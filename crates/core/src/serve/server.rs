//! The thread-per-core prediction server.
//!
//! Topology: one **acceptor** thread (non-blocking accept loop), one
//! **handler** thread per connection (framing + protocol + control
//! commands), and `workers` **worker** threads that drain a shared job
//! queue and run the cached batch-prediction path. Handlers enqueue
//! `predict`/`select` jobs and block on a per-job reply channel; workers
//! pop up to `max_batch` jobs at a time, so concurrent requests from
//! different connections coalesce into one
//! [`Predictor::predict_batch_cached`] call naturally under load.
//!
//! Each worker binds a [`Predictor`] to the current [`ModelSnapshot`]
//! and rebinds when [`ModelStore::current_version`] moves — a snapshot
//! swap never blocks a reader and never stalls the queue; a batch popped
//! concurrently with a publish is served by the version that was current
//! at dequeue (the response carries that version id).
//!
//! The profile cache is a [`ShardedProfileCache`]: requests touch only
//! the shard their quantized key hashes to, so worker threads serving
//! disjoint keys never contend on a cache lock.

use super::framing::{write_frame, FrameError, FrameReader};
use super::protocol::{
    parse_objective, CacheStatsReply, QualityReply, Request, Response, ServerStatsReply, SloReply,
};
use super::telemetry;
use crate::cache::ShardedProfileCache;
use crate::models::PowerTimeModels;
use crate::predictor::Predictor;
use crate::snapshot::{ModelSnapshot, ModelStore, SnapshotMeta};
use gpu_model::{DvfsGrid, MetricSample};
use nn::Precision;
use obs::slo::{SloEngine, SloSpec};
use obs::timeseries::{Sampler, TimeSeries};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long blocking waits (queue pops, socket reads) last before
/// re-checking the stop flag.
const POLL: Duration = Duration::from_millis(25);

/// Server tunables. `Default` is sized for tests and smoke runs; the CLI
/// scales `workers`/`cache_shards` to the machine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Worker (prediction) threads.
    pub workers: usize,
    /// Total cached profiles across all shards.
    pub cache_capacity: usize,
    /// Independent cache shards (keys spread by hash).
    pub cache_shards: usize,
    /// Max jobs coalesced into one prediction batch.
    pub max_batch: usize,
    /// Max accepted frame payload, bytes.
    pub max_frame: usize,
    /// Bind address for the HTTP telemetry side-port (`None` disables
    /// the responder; the protocol-level `scrape` frame always works).
    pub telemetry_addr: Option<String>,
    /// Time-series sampler interval (`None` = `DVFS_TS_INTERVAL` env,
    /// default 1s).
    pub ts_interval: Option<Duration>,
    /// Retained time-series ticks (bounds how far back SLO windows can
    /// actually see).
    pub ts_capacity: usize,
    /// Rolling window the `stats` frame and `serve.window.*` gauges
    /// report over.
    pub stats_window: Duration,
    /// Declared objectives the burn-rate engine evaluates each tick.
    pub slos: Vec<SloSpec>,
    /// Precision requested for reloaded snapshots (`dvfs serve
    /// --precision`). Reduced-precision candidates still pass through the
    /// snapshot accuracy gate, so the *active* precision (exposed in
    /// `stats` and scrapes) may fall back to f64.
    pub precision: Precision,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            cache_capacity: 4096,
            cache_shards: 4,
            max_batch: 32,
            max_frame: super::framing::DEFAULT_MAX_FRAME,
            telemetry_addr: None,
            ts_interval: None,
            ts_capacity: 1024,
            stats_window: Duration::from_secs(10),
            slos: default_slos(),
            precision: Precision::F64,
        }
    }
}

/// The stock serve objectives: p99 latency under 500µs at 99%,
/// availability (non-error replies) at 99.9%, and the power model's
/// rolling MAPE inside the paper's 12% band. Standard 5m/1h windows,
/// burn threshold 1.0; `dvfs serve --slo-*` flags override.
pub fn default_slos() -> Vec<SloSpec> {
    vec![
        SloSpec::latency("latency_p99", "serve.request_ns", 500_000, 0.99),
        SloSpec::error_ratio("availability", "serve.requests", "serve.errors", 0.999),
        SloSpec::gauge_below("quality_mape", "quality.power.mape", 12.0, 0.999),
    ]
}

/// One queued prediction request plus everything needed to answer it.
struct Job {
    req: Request,
    t0: Instant,
    t0_ns: u64,
    /// Process-unique request id: the flow id tying the handler's
    /// `serve.recv` slice to the worker's `serve.request` slice on the
    /// trace timeline.
    req_id: u64,
    reply: mpsc::Sender<Response>,
}

/// The handler→worker queue: a mutex'd deque plus a condvar (the compat
/// `parking_lot` has no condvar, so this is `std::sync`).
struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

impl Queue {
    fn push(&self, job: Job) {
        self.jobs.lock().unwrap().push_back(job);
        self.ready.notify_one();
    }

    /// Pops up to `max_batch` jobs. Returns an empty batch on wait
    /// timeout (caller re-checks stop/version) — after stop is set the
    /// queue keeps draining until empty, so every accepted job is
    /// answered.
    fn pop_batch(&self, max_batch: usize) -> Vec<Job> {
        let mut jobs = self.jobs.lock().unwrap();
        if jobs.is_empty() {
            let (guard, _) = self.ready.wait_timeout(jobs, POLL).unwrap();
            jobs = guard;
        }
        let n = jobs.len().min(max_batch);
        jobs.drain(..n).collect()
    }

    fn is_empty(&self) -> bool {
        self.jobs.lock().unwrap().is_empty()
    }
}

/// Shared server state.
struct Shared {
    store: Arc<ModelStore>,
    cache: ShardedProfileCache,
    queue: Queue,
    stop: AtomicBool,
    max_frame: usize,
    started: Instant,
    /// Rolling metric snapshots the sampler thread feeds; everything
    /// windowed (stats frame, `serve.window.*` gauges, SLO burn rates)
    /// reads from here.
    series: Arc<TimeSeries>,
    slo: SloEngine,
    stats_window: Duration,
    next_req_id: AtomicU64,
    errors: obs::Counter,
    /// The precision `reload` requests for fresh snapshots (the gate may
    /// still veto it down to f64 per snapshot).
    precision: Precision,
}

impl Shared {
    /// Refreshes every derived gauge in the registry: cache counters
    /// (which only move on publish), uptime, the rolling-window view,
    /// and the SLO burn rates. The sampler calls this before each tick
    /// so scrapes and exports always see live values.
    fn publish_live(&self) {
        self.cache.publish_stats();
        let reg = obs::global();
        reg.gauge("serve.uptime_s")
            .set(self.started.elapsed().as_secs_f64());
        if let Some(w) = self.series.window(self.stats_window) {
            reg.gauge("serve.window.qps").set(w.rate("serve.requests"));
            reg.gauge("serve.window.hit_rate")
                .set(w.ratio("cache.hits", "cache.misses"));
            if let Some(d) = w.hist_delta("serve.request_ns") {
                reg.gauge("serve.window.p50_us")
                    .set(d.percentile(0.50) as f64 / 1_000.0);
                reg.gauge("serve.window.p99_us")
                    .set(d.percentile(0.99) as f64 / 1_000.0);
            }
        }
        self.slo.evaluate(&self.series);
    }
}

/// A running `dvfs serve` instance.
///
/// Start with [`Server::start`], stop with [`Server::shutdown`] (or a
/// `shutdown` frame from any client), reap with [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    sampler: Option<Sampler>,
    telemetry: Option<JoinHandle<()>>,
    telemetry_addr: Option<SocketAddr>,
}

impl Server {
    /// Binds `config.addr` and spawns the acceptor and worker threads.
    pub fn start(config: ServeConfig, store: Arc<ModelStore>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let reg = obs::global();
        let shared = Arc::new(Shared {
            store,
            cache: ShardedProfileCache::new(config.cache_capacity, config.cache_shards),
            queue: Queue {
                jobs: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
            },
            stop: AtomicBool::new(false),
            max_frame: config.max_frame,
            started: Instant::now(),
            series: Arc::new(TimeSeries::new(config.ts_capacity)),
            slo: SloEngine::with_registry(config.slos.clone(), reg),
            stats_window: config.stats_window,
            next_req_id: AtomicU64::new(0),
            errors: reg.counter("serve.errors"),
            precision: config.precision,
        });
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let max_batch = config.max_batch.max(1);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, max_batch))
                    .expect("spawn serve worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || accept_loop(listener, &shared, &handlers))
                .expect("spawn serve acceptor")
        };
        // The sampler periodically captures a registry snapshot into the
        // time series; its pre-hook republishes the derived gauges so
        // each tick (and anything reading the registry) is fresh.
        let sampler = {
            let series = Arc::clone(&shared.series);
            let live = Arc::clone(&shared);
            let interval = config
                .ts_interval
                .unwrap_or_else(obs::timeseries::interval_from_env);
            Some(Sampler::start(series, interval, move || {
                live.publish_live()
            }))
        };
        let (telemetry, telemetry_addr) = match config.telemetry_addr.as_deref() {
            Some(addr) => {
                let tl = TcpListener::bind(addr)?;
                let taddr = tl.local_addr()?;
                let scrape_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("serve-telemetry".to_string())
                    .spawn(move || {
                        let stop_shared = Arc::clone(&scrape_shared);
                        telemetry::telemetry_loop(
                            tl,
                            move || stop_shared.stop.load(Ordering::Acquire),
                            move |path| match path {
                                "/metrics" => {
                                    scrape_shared.publish_live();
                                    Some((
                                        obs::prom::CONTENT_TYPE.to_string(),
                                        render_exposition(&scrape_shared),
                                    ))
                                }
                                "/healthz" => Some(("text/plain".to_string(), "ok\n".to_string())),
                                _ => None,
                            },
                        );
                    })
                    .expect("spawn serve telemetry");
                obs::log!(Info, "serve: telemetry on {taddr}");
                (Some(handle), Some(taddr))
            }
            None => (None, None),
        };
        obs::log!(Info, "serve: listening on {local_addr}");
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
            handlers,
            sampler,
            telemetry,
            telemetry_addr,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound HTTP telemetry address, when `telemetry_addr` was set.
    pub fn telemetry_addr(&self) -> Option<SocketAddr> {
        self.telemetry_addr
    }

    /// True once a shutdown (API call, `shutdown` frame) was requested.
    pub fn is_stopped(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Requests shutdown: stops accepting, lets workers drain the queue.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.queue.ready.notify_all();
    }

    /// A consistent snapshot of the shared cache's counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.shared.cache.stats()
    }

    /// Waits for every thread to exit (call [`Server::shutdown`] first,
    /// or send a `shutdown` frame). Republishes the derived gauges so a
    /// `--metrics-out` export taken after join reflects the run.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().unwrap());
        for h in handlers {
            let _ = h.join();
        }
        if let Some(sampler) = self.sampler.take() {
            sampler.stop();
        }
        if let Some(telemetry) = self.telemetry.take() {
            let _ = telemetry.join();
        }
        self.shared.publish_live();
    }
}

/// The exposition document a scrape (HTTP or `scrape` frame) returns:
/// the global registry plus the build-info pseudo-metric, labeled with
/// the precision the live snapshot actually serves (post-veto).
fn render_exposition(shared: &Shared) -> String {
    let precision = shared.store.load().precision();
    obs::prom::render_with(
        obs::global(),
        &[(
            "dvfs_build_info",
            "dvfs build metadata",
            &[
                ("version", telemetry::BUILD_VERSION),
                ("git", telemetry::BUILD_GIT),
                ("precision", precision.name()),
            ],
        )],
    )
}

fn accept_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let connections = obs::global().counter("serve.connections");
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                connections.inc();
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared))
                    .expect("spawn serve handler");
                handlers.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                obs::log!(Warn, "serve: accept failed: {e}");
                std::thread::sleep(POLL);
            }
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut reader = FrameReader::new();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match reader.poll_frame(&mut stream, shared.max_frame) {
            Ok(None) => {}
            Ok(Some(bytes)) => {
                if !dispatch(&bytes, &mut stream, shared) {
                    return;
                }
            }
            Err(FrameError::TooLarge { announced, max }) => {
                // The stream is desynced past an oversized frame; reply
                // with the reason, then drop the connection.
                let resp = Response::err(0, format!("frame of {announced} bytes exceeds {max}"));
                let _ = send(&mut stream, &resp);
                return;
            }
            Err(FrameError::Closed { .. }) | Err(FrameError::Io(_)) => return,
        }
    }
}

fn send(stream: &mut TcpStream, resp: &Response) -> bool {
    let payload = serde_json::to_string(resp).expect("response serializes");
    write_frame(stream, payload.as_bytes()).is_ok()
}

/// Handles one decoded frame; returns false when the connection should
/// close. Every non-ok reply bumps `serve.errors`, which feeds the
/// availability SLO.
fn dispatch(bytes: &[u8], stream: &mut TcpStream, shared: &Arc<Shared>) -> bool {
    let send_counted = |stream: &mut TcpStream, resp: &Response| -> bool {
        if !resp.ok {
            shared.errors.inc();
        }
        send(stream, resp)
    };
    // Garbage bytes inside a well-formed frame leave the stream synced,
    // so both decode failures answer with an error and keep serving.
    let text = match std::str::from_utf8(bytes) {
        Ok(text) => text,
        Err(e) => {
            return send_counted(stream, &Response::err(0, format!("bad request: {e}")));
        }
    };
    let req: Request = match serde_json::from_str(text) {
        Ok(req) => req,
        Err(e) => {
            return send_counted(stream, &Response::err(0, format!("bad request: {e}")));
        }
    };
    match req.cmd.as_str() {
        "predict" | "select" => {
            if let Err(reason) = validate(&req) {
                return send_counted(stream, &Response::err(0, reason));
            }
            let (tx, rx) = mpsc::channel();
            let t0_ns = obs::trace::now_ns();
            let req_id = shared.next_req_id.fetch_add(1, Ordering::Relaxed) + 1;
            shared.queue.push(Job {
                req,
                t0: Instant::now(),
                t0_ns,
                req_id,
                reply: tx,
            });
            if obs::trace::enabled() {
                // Flow start before closing the recv slice, so its
                // timestamp falls inside the slice and Perfetto draws
                // the arrow from here to the worker's request span.
                obs::trace::flow_start(obs::trace::intern("serve.req"), req_id);
                obs::trace::complete(obs::trace::intern("serve.recv"), t0_ns, &[]);
            }
            // Workers drain the queue even after stop, so the reply
            // normally arrives; the timeout covers a worker that died.
            match rx.recv_timeout(Duration::from_secs(10)) {
                Ok(resp) => send_counted(stream, &resp),
                Err(_) => send_counted(stream, &Response::err(0, "server shutting down")),
            }
        }
        "ping" => send(stream, &Response::ok(shared.store.current_version())),
        "version" => {
            let snap = shared.store.load();
            let mut resp = Response::ok(snap.version);
            resp.label = Some(snap.meta.label.clone());
            send(stream, &resp)
        }
        "stats" => {
            let stats = shared.cache.stats();
            let mut resp = Response::ok(shared.store.current_version());
            resp.stats = Some(CacheStatsReply {
                lookups: stats.lookups as f64,
                hits: stats.hits as f64,
                misses: stats.misses as f64,
                evictions: stats.evictions as f64,
                hit_rate: stats.hit_rate(),
                resident: shared.cache.len() as f64,
                shards: shared.cache.num_shards() as f64,
            });
            resp.server = Some(server_stats(shared));
            send(stream, &resp)
        }
        "scrape" => {
            shared.publish_live();
            let mut resp = Response::ok(shared.store.current_version());
            resp.text = Some(render_exposition(shared));
            send(stream, &resp)
        }
        "reload" => send_counted(stream, &reload(&req, shared)),
        "shutdown" => {
            let _ = send(stream, &Response::ok(shared.store.current_version()));
            shared.stop.store(true, Ordering::Release);
            shared.queue.ready.notify_all();
            false
        }
        other => send_counted(
            stream,
            &Response::err(0, format!("unknown command `{other}`")),
        ),
    }
}

/// Builds the `server` section of the stats frame: uptime, build info,
/// the rolling-window view, and the current SLO + quality states.
fn server_stats(shared: &Arc<Shared>) -> ServerStatsReply {
    shared.publish_live();
    let window = shared.series.window(shared.stats_window);
    let (qps, hit_rate) = window
        .as_ref()
        .map(|w| {
            (
                w.rate("serve.requests"),
                w.ratio("cache.hits", "cache.misses"),
            )
        })
        .unwrap_or((0.0, 0.0));
    let (p50_us, p99_us) = window
        .as_ref()
        .and_then(|w| w.hist_delta("serve.request_ns"))
        .map(|d| {
            (
                d.percentile(0.50) as f64 / 1_000.0,
                d.percentile(0.99) as f64 / 1_000.0,
            )
        })
        .unwrap_or((0.0, 0.0));
    ServerStatsReply {
        uptime_s: shared.started.elapsed().as_secs_f64(),
        build_version: telemetry::BUILD_VERSION.to_string(),
        build_git: telemetry::BUILD_GIT.to_string(),
        precision: shared.store.load().precision().name().to_string(),
        window_s: shared.stats_window.as_secs_f64(),
        qps,
        p50_us,
        p99_us,
        hit_rate,
        slo: shared
            .slo
            .status()
            .into_iter()
            .map(|s| SloReply {
                name: s.name,
                target: s.target,
                burn_fast: s.burn_fast,
                burn_slow: s.burn_slow,
                firing: s.firing,
                alerts: s.alerts as f64,
            })
            .collect(),
        quality: obs::quality::snapshot()
            .into_iter()
            .map(|q| QualityReply {
                model: q.model,
                mape: q.mape,
                max_ape: q.max_ape,
                samples: q.samples as f64,
                alerts: q.alerts as f64,
                above_band: q.above_band,
            })
            .collect(),
    }
}

fn validate(req: &Request) -> Result<(), String> {
    let need = |name: &str, v: Option<f64>| -> Result<f64, String> {
        match v {
            Some(v) if v.is_finite() => Ok(v),
            Some(_) => Err(format!("`{name}` must be finite")),
            None => Err(format!("`{}` requires `{name}`", req.cmd)),
        }
    };
    if req.workload.is_none() {
        return Err(format!("`{}` requires `workload`", req.cmd));
    }
    let fp = need("fp_active", req.fp_active)?;
    let dram = need("dram_active", req.dram_active)?;
    let exec = need("exec_time", req.exec_time)?;
    if !(0.0..=1.0).contains(&fp) || !(0.0..=1.0).contains(&dram) {
        return Err("activities must lie in [0, 1]".to_string());
    }
    if exec <= 0.0 {
        return Err("`exec_time` must be positive".to_string());
    }
    if req.cmd == "select" {
        let name = req
            .objective
            .as_deref()
            .ok_or_else(|| "`select` requires `objective`".to_string())?;
        parse_objective(name)?;
        if let Some(th) = req.threshold {
            if !th.is_finite() || th < 0.0 {
                return Err("`threshold` must be a non-negative fraction".to_string());
            }
        }
    }
    Ok(())
}

fn reload(req: &Request, shared: &Arc<Shared>) -> Response {
    let path = match req.path.as_deref() {
        Some(p) => p,
        None => return Response::err(0, "`reload` requires `path`"),
    };
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(e) => return Response::err(0, format!("read {path}: {e}")),
    };
    let models = match PowerTimeModels::from_json(&json) {
        Ok(models) => models,
        Err(e) => return Response::err(0, format!("parse {path}: {e}")),
    };
    let spec = shared.store.load().spec.clone();
    let version = shared.store.publish(ModelSnapshot::with_precision(
        models,
        spec,
        SnapshotMeta {
            label: path.to_string(),
            dataset_rows: 0,
            train_seconds: 0.0,
        },
        shared.precision,
    ));
    obs::log!(
        Info,
        "serve: reloaded models from {path} as version {version}"
    );
    Response::ok(version)
}

/// Builds the default-clock reference sample a wire request stands for.
/// Only the fields the online phase reads are populated (workload,
/// activities, clock, exec time); the rest are zero.
fn reference_from(req: &Request, max_core_mhz: f64) -> MetricSample {
    MetricSample {
        workload: req.workload.clone().unwrap_or_default(),
        run: 0,
        fp64_active: req.fp_active.unwrap_or(0.0),
        fp32_active: 0.0,
        sm_app_clock: max_core_mhz,
        dram_active: req.dram_active.unwrap_or(0.0),
        gr_engine_active: 0.0,
        gpu_utilization: 0.0,
        power_usage: 0.0,
        sm_active: 0.0,
        sm_occupancy: 0.0,
        pcie_tx_bytes: 0.0,
        pcie_rx_bytes: 0.0,
        exec_time: req.exec_time.unwrap_or(0.0),
    }
}

fn worker_loop(shared: &Arc<Shared>, max_batch: usize) {
    let reg = obs::global();
    let requests = reg.counter("serve.requests");
    let batches = reg.counter("serve.batches");
    let latency = reg.histogram("serve.request_ns");
    let batch_len = reg.histogram("serve.batch_len");
    let trace_request = obs::trace::intern("serve.request");
    let trace_flow = obs::trace::intern("serve.req");
    let trace_workload = obs::trace::intern("workload");
    let trace_version = obs::trace::intern("version");
    'rebind: loop {
        // Bind a predictor to the current snapshot; the Arc keeps it
        // alive (and bitwise stable) even if a publish lands mid-batch.
        let snap = shared.store.load();
        // Every sweep runs on the snapshot's packed batch-fused engines
        // (f64 mode is bitwise-identical to the training-path forward).
        let predictor = Predictor::with_engines(&snap.models, &snap.engines, snap.spec.clone());
        let freqs = DvfsGrid::for_spec(&snap.spec).used();
        loop {
            let batch = shared.queue.pop_batch(max_batch);
            if batch.is_empty() {
                if shared.stop.load(Ordering::Acquire) && shared.queue.is_empty() {
                    return;
                }
                if shared.store.current_version() != snap.version {
                    continue 'rebind;
                }
                continue;
            }
            batches.inc();
            batch_len.record(batch.len() as u64);
            let refs: Vec<MetricSample> = batch
                .iter()
                .map(|job| reference_from(&job.req, snap.spec.max_core_mhz))
                .collect();
            let profiles = predictor.predict_batch_cached(&shared.cache, &refs, &freqs);
            for (job, profile) in batch.into_iter().zip(profiles) {
                let mut resp = Response::ok(snap.version);
                if job.req.cmd == "select" {
                    let objective = parse_objective(job.req.objective.as_deref().unwrap_or(""))
                        .expect("validated at dispatch");
                    resp.selection = Some(profile.select(objective, job.req.threshold));
                }
                resp.profile = Some(profile);
                requests.inc();
                latency.record_duration(job.t0.elapsed());
                if obs::trace::enabled() {
                    let workload = job.req.workload.as_deref().unwrap_or("?");
                    // Flow end inside the request span (emitted just
                    // before the span closes) — the arrow head lands on
                    // the worker slice.
                    obs::trace::flow_end(trace_flow, job.req_id);
                    obs::trace::complete(
                        trace_request,
                        job.t0_ns,
                        &[
                            (
                                trace_workload,
                                obs::trace::ArgValue::Str(obs::trace::intern(workload)),
                            ),
                            (trace_version, obs::trace::ArgValue::U64(snap.version)),
                        ],
                    );
                }
                // A dropped receiver (handler gone) is fine; the work
                // still warmed the cache.
                let _ = job.reply.send(resp);
            }
            if shared.store.current_version() != snap.version {
                continue 'rebind;
            }
        }
    }
}

/// A blocking protocol client (loadgen, tests, CLI helpers).
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    max_frame: usize,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            reader: FrameReader::new(),
            max_frame: super::framing::DEFAULT_MAX_FRAME,
        })
    }

    /// Sends one request and waits for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, FrameError> {
        let payload = serde_json::to_string(req).expect("request serializes");
        write_frame(&mut self.stream, payload.as_bytes()).map_err(FrameError::Io)?;
        self.read_response()
    }

    /// Sends raw bytes as one frame (protocol-abuse tests).
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Reads one response frame (pairs with [`Client::send_raw`]).
    pub fn read_response(&mut self) -> Result<Response, FrameError> {
        let frame = self.reader.read_frame(&mut self.stream, self.max_frame)?;
        let text = std::str::from_utf8(&frame)
            .map_err(|e| FrameError::Io(io::Error::new(io::ErrorKind::InvalidData, e)))?;
        serde_json::from_str(text).map_err(|e| {
            FrameError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response: {e}"),
            ))
        })
    }

    /// The underlying stream (tests poke at it to truncate frames).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
