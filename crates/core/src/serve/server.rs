//! The thread-per-core prediction server.
//!
//! Topology: one **acceptor** thread (non-blocking accept loop), one
//! **handler** thread per connection (framing + protocol + control
//! commands), and `workers` **worker** threads that drain a sharded
//! job [`Dispatcher`] and run the cached batch-prediction path.
//!
//! The request path is built around four hot-path structures:
//!
//! * **Sharded dispatch** ([`super::dispatch`]) — each worker owns a
//!   queue shard; a handler pushes a whole pipelined burst to one shard
//!   (round-robin across bursts) and an idle worker steals from a loaded
//!   sibling, so handlers and workers only contend when someone is
//!   otherwise idle.
//! * **Pooled replies** ([`super::reply`]) — one generation-guarded
//!   [`ReplyTable`] per connection replaces the per-request
//!   `mpsc::channel()`; workers *swap* their serialization buffer into
//!   the request's slot and take the old buffer back as scratch, so the
//!   steady state allocates nothing per request.
//! * **Zero-copy framing** ([`super::framing`]) — the handler drains
//!   every frame buffered by one socket read (pipelining) and coalesces
//!   consecutive `predict`/`select` frames into **one** dispatch batch;
//!   all their replies leave in a single vectored write, length
//!   prefixes and payloads as separate iovecs.
//! * **Serde-free hot shapes** ([`super::protocol::fast`]) — predict
//!   frames parse and responses render without the boxed JSON value
//!   tree, byte-identical to the serde path (pinned by tests); each
//!   worker additionally caches the serialized, workload-independent
//!   profile fragment per (quantized activities, exec time) so a hot
//!   key's response is a few memcpys.
//!
//! Each worker binds a [`Predictor`] to the current [`ModelSnapshot`]
//! and rebinds (dropping its per-snapshot fragment cache) when
//! [`ModelStore::changed_since`] reports a publish — a snapshot swap
//! never blocks a reader and never stalls the queues; a batch popped
//! concurrently with a publish is served by the version that was current
//! at dequeue (the response carries that version id).
//!
//! The profile cache is a [`ShardedProfileCache`]: requests touch only
//! the shard their quantized key hashes to, and worker-local fragment
//! hits are booked into the same counters
//! ([`ShardedProfileCache::record_front_hits`]) so `lookups == hits +
//! misses` stays true for the request stream as a whole.

use super::dispatch::Dispatcher;
use super::framing::{write_frame, write_frames_vectored, Fill, FrameError, FrameReader};
use super::protocol::{
    fast, parse_objective, CacheStatsReply, QualityReply, Request, Response, ServerStatsReply,
    SloReply,
};
use super::reply::ReplyTable;
use super::telemetry;
use crate::cache::{CacheHandle, CacheKey, ShardedProfileCache};
use crate::models::PowerTimeModels;
use crate::objective::select_optimal;
use crate::predictor::{PredictedProfile, Predictor};
use crate::snapshot::{ModelSnapshot, ModelStore, SnapshotMeta};
use gpu_model::{DvfsGrid, MetricSample};
use nn::Precision;
use obs::slo::{SloEngine, SloSpec};
use obs::timeseries::{Sampler, TimeSeries};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long blocking waits (queue parks, socket reads) last before
/// re-checking the stop flag.
const POLL: Duration = Duration::from_millis(25);

/// How long a handler waits for the worker pool to answer a dispatched
/// batch before failing the requests (covers a crashed worker).
const REPLY_TIMEOUT: Duration = Duration::from_secs(10);

/// Max entries in each worker's serialized-fragment cache before it is
/// reset wholesale (a cheap epoch clear beats per-entry LRU bookkeeping
/// at this size; the cache also clears on every snapshot rebind).
const FRAGMENT_CACHE_MAX: usize = 8192;

/// Server tunables. `Default` is sized for tests and smoke runs; the CLI
/// scales `workers`/`cache_shards` to the machine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Worker (prediction) threads.
    pub workers: usize,
    /// Total cached profiles across all shards.
    pub cache_capacity: usize,
    /// Independent cache shards (keys spread by hash).
    pub cache_shards: usize,
    /// Max jobs coalesced into one prediction batch.
    pub max_batch: usize,
    /// Max accepted frame payload, bytes.
    pub max_frame: usize,
    /// Bind address for the HTTP telemetry side-port (`None` disables
    /// the responder; the protocol-level `scrape` frame always works).
    pub telemetry_addr: Option<String>,
    /// Time-series sampler interval (`None` = `DVFS_TS_INTERVAL` env,
    /// default 1s).
    pub ts_interval: Option<Duration>,
    /// Retained time-series ticks (bounds how far back SLO windows can
    /// actually see).
    pub ts_capacity: usize,
    /// Rolling window the `stats` frame and `serve.window.*` gauges
    /// report over.
    pub stats_window: Duration,
    /// Declared objectives the burn-rate engine evaluates each tick.
    pub slos: Vec<SloSpec>,
    /// Precision requested for reloaded snapshots (`dvfs serve
    /// --precision`). Reduced-precision candidates still pass through the
    /// snapshot accuracy gate, so the *active* precision (exposed in
    /// `stats` and scrapes) may fall back to f64.
    pub precision: Precision,
    /// Decision-journal configuration (`dvfs serve --journal-dir`).
    /// `None` disables the journal; the energy ledger and its gauges
    /// stay live either way.
    pub journal: Option<obs::journal::JournalConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            cache_capacity: 4096,
            cache_shards: 4,
            max_batch: 32,
            max_frame: super::framing::DEFAULT_MAX_FRAME,
            telemetry_addr: None,
            ts_interval: None,
            ts_capacity: 1024,
            stats_window: Duration::from_secs(10),
            slos: default_slos(),
            precision: Precision::F64,
            journal: None,
        }
    }
}

/// The stock serve objectives: p99 latency under 500µs at 99%,
/// availability (non-error replies) at 99.9%, and the power model's
/// rolling MAPE inside the paper's 12% band. Standard 5m/1h windows,
/// burn threshold 1.0; `dvfs serve --slo-*` flags override.
pub fn default_slos() -> Vec<SloSpec> {
    vec![
        SloSpec::latency("latency_p99", "serve.request_ns", 500_000, 0.99),
        SloSpec::error_ratio("availability", "serve.requests", "serve.errors", 0.999),
        SloSpec::gauge_below("quality_mape", "quality.power.mape", 12.0, 0.999),
    ]
}

/// One queued prediction request plus everything needed to answer it
/// into its connection's reply slot.
struct Job {
    req: Request,
    t0: Instant,
    t0_ns: u64,
    /// Process-unique request id: the flow id tying the handler's
    /// `serve.recv` slice to the worker's `serve.request` slice on the
    /// trace timeline.
    req_id: u64,
    /// The connection's reply table plus the slot coordinates the worker
    /// fills. The generation guard makes a timed-out batch's late fills
    /// harmless.
    reply: Arc<ReplyTable>,
    generation: u64,
    index: usize,
}

/// Shared server state.
struct Shared {
    store: Arc<ModelStore>,
    cache: ShardedProfileCache,
    dispatch: Dispatcher<Job>,
    stop: AtomicBool,
    max_frame: usize,
    started: Instant,
    /// Rolling metric snapshots the sampler thread feeds; everything
    /// windowed (stats frame, `serve.window.*` gauges, SLO burn rates)
    /// reads from here.
    series: Arc<TimeSeries>,
    slo: SloEngine,
    stats_window: Duration,
    next_req_id: AtomicU64,
    errors: obs::Counter,
    /// Responses that failed to serialize and were degraded to an error
    /// frame instead of panicking the handler.
    serialize_errors: obs::Counter,
    /// The precision `reload` requests for fresh snapshots (the gate may
    /// still veto it down to f64 per snapshot).
    precision: Precision,
    /// Predicted-savings accounting; every `select` decision books its
    /// joules-vs-max-clock here whether or not the journal is enabled.
    ledger: super::journal::EnergyLedger,
}

impl Shared {
    /// Refreshes every derived gauge in the registry: cache counters
    /// (which only move on publish), uptime, the rolling-window view,
    /// and the SLO burn rates. The sampler calls this before each tick
    /// so scrapes and exports always see live values.
    fn publish_live(&self) {
        self.cache.publish_stats();
        let reg = obs::global();
        reg.gauge("serve.uptime_s")
            .set(self.started.elapsed().as_secs_f64());
        reg.gauge("energy.predicted_joules_saved")
            .set(self.ledger.total_joules());
        if let Some(w) = self.series.window(self.stats_window) {
            reg.gauge("serve.window.qps").set(w.rate("serve.requests"));
            reg.gauge("serve.window.hit_rate")
                .set(w.ratio("cache.hits", "cache.misses"));
            // The ledger counter is millijoules; its window rate is
            // mJ/s, i.e. milliwatts of predicted savings.
            reg.gauge("serve.window.watts_saved")
                .set(w.rate("energy.predicted_joules_saved_mj") / 1e3);
            if let Some(d) = w.hist_delta("serve.request_ns") {
                reg.gauge("serve.window.p50_us")
                    .set(d.percentile(0.50) as f64 / 1_000.0);
                reg.gauge("serve.window.p99_us")
                    .set(d.percentile(0.99) as f64 / 1_000.0);
            }
        }
        self.slo.evaluate(&self.series);
    }
}

/// A running `dvfs serve` instance.
///
/// Start with [`Server::start`], stop with [`Server::shutdown`] (or a
/// `shutdown` frame from any client), reap with [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    sampler: Option<Sampler>,
    telemetry: Option<JoinHandle<()>>,
    telemetry_addr: Option<SocketAddr>,
    /// The decision journal's writer thread; stopped (final drain +
    /// flush) after the workers join so every served decision lands.
    journal: Option<obs::journal::JournalWriter>,
}

impl Server {
    /// Binds `config.addr` and spawns the acceptor and worker threads.
    pub fn start(config: ServeConfig, store: Arc<ModelStore>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let reg = obs::global();
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared {
            store,
            cache: ShardedProfileCache::new(config.cache_capacity, config.cache_shards),
            dispatch: Dispatcher::new(worker_count),
            stop: AtomicBool::new(false),
            max_frame: config.max_frame,
            started: Instant::now(),
            series: Arc::new(TimeSeries::new(config.ts_capacity)),
            slo: SloEngine::with_registry(config.slos.clone(), reg),
            stats_window: config.stats_window,
            next_req_id: AtomicU64::new(0),
            errors: reg.counter("serve.errors"),
            serialize_errors: reg.counter("serve.serialize_errors"),
            precision: config.precision,
            ledger: super::journal::EnergyLedger::new(),
        });
        let journal = match config.journal.clone() {
            Some(journal_config) => {
                let writer = obs::journal::JournalWriter::open(journal_config)?;
                obs::log!(
                    Info,
                    "serve: journal in {} ({} record(s) recovered)",
                    writer.dir().display(),
                    writer.recovered().records
                );
                Some(writer)
            }
            None => None,
        };
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let max_batch = config.max_batch.max(1);
                // Each worker gets its own bounded ring so producers
                // never contend with each other, only with the drain.
                let producer = journal.as_ref().map(|j| j.producer());
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i, max_batch, producer))
                    .expect("spawn serve worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || accept_loop(listener, &shared, &handlers))
                .expect("spawn serve acceptor")
        };
        // The sampler periodically captures a registry snapshot into the
        // time series; its pre-hook republishes the derived gauges so
        // each tick (and anything reading the registry) is fresh.
        let sampler = {
            let series = Arc::clone(&shared.series);
            let live = Arc::clone(&shared);
            let interval = config
                .ts_interval
                .unwrap_or_else(obs::timeseries::interval_from_env);
            Some(Sampler::start(series, interval, move || {
                live.publish_live()
            }))
        };
        let (telemetry, telemetry_addr) = match config.telemetry_addr.as_deref() {
            Some(addr) => {
                let tl = TcpListener::bind(addr)?;
                let taddr = tl.local_addr()?;
                let scrape_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("serve-telemetry".to_string())
                    .spawn(move || {
                        let stop_shared = Arc::clone(&scrape_shared);
                        telemetry::telemetry_loop(
                            tl,
                            move || stop_shared.stop.load(Ordering::Acquire),
                            move |path| match path {
                                "/metrics" => {
                                    scrape_shared.publish_live();
                                    Some((
                                        obs::prom::CONTENT_TYPE.to_string(),
                                        render_exposition(&scrape_shared),
                                    ))
                                }
                                "/healthz" => Some(("text/plain".to_string(), "ok\n".to_string())),
                                _ => None,
                            },
                        );
                    })
                    .expect("spawn serve telemetry");
                obs::log!(Info, "serve: telemetry on {taddr}");
                (Some(handle), Some(taddr))
            }
            None => (None, None),
        };
        obs::log!(Info, "serve: listening on {local_addr}");
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
            handlers,
            sampler,
            telemetry,
            telemetry_addr,
            journal,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound HTTP telemetry address, when `telemetry_addr` was set.
    pub fn telemetry_addr(&self) -> Option<SocketAddr> {
        self.telemetry_addr
    }

    /// True once a shutdown (API call, `shutdown` frame) was requested.
    pub fn is_stopped(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Requests shutdown: stops accepting, lets workers drain the shards.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.dispatch.wake_all();
    }

    /// A consistent snapshot of the shared cache's counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.shared.cache.stats()
    }

    /// Waits for every thread to exit (call [`Server::shutdown`] first,
    /// or send a `shutdown` frame). Republishes the derived gauges so a
    /// `--metrics-out` export taken after join reflects the run.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().unwrap());
        for h in handlers {
            let _ = h.join();
        }
        if let Some(sampler) = self.sampler.take() {
            sampler.stop();
        }
        if let Some(telemetry) = self.telemetry.take() {
            let _ = telemetry.join();
        }
        // Workers are gone, so the rings are quiescent: one final drain
        // makes every decision durable before the process can exit.
        if let Some(journal) = self.journal.take() {
            journal.stop();
        }
        self.shared.publish_live();
    }
}

/// The exposition document a scrape (HTTP or `scrape` frame) returns:
/// the global registry plus the build-info pseudo-metric, labeled with
/// the precision the live snapshot actually serves (post-veto).
fn render_exposition(shared: &Shared) -> String {
    let precision = shared.store.load().precision();
    obs::prom::render_with(
        obs::global(),
        &[(
            "dvfs_build_info",
            "dvfs build metadata",
            &[
                ("version", telemetry::BUILD_VERSION),
                ("git", telemetry::BUILD_GIT),
                ("precision", precision.name()),
            ],
        )],
    )
}

fn accept_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let connections = obs::global().counter("serve.connections");
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                connections.inc();
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared))
                    .expect("spawn serve handler");
                handlers.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                obs::log!(Warn, "serve: accept failed: {e}");
                std::thread::sleep(POLL);
            }
        }
    }
}

/// What one decoded frame asks of the connection handler. Consecutive
/// `Predict` actions coalesce into one dispatch batch; anything else is
/// answered inline (after flushing the batch, to keep replies in request
/// order).
enum Action {
    /// A validated `predict`/`select` bound for the worker pool.
    Predict(Request),
    /// A control command answered on the handler thread.
    Control(Request),
    /// An immediate reply (decode or validation failure). Boxed so the
    /// hot `Predict` variant isn't padded out to `Response`'s size.
    Reply(Box<Response>),
    /// Placeholder left behind once an action is moved out for
    /// processing (never observed by the scan: indices only advance).
    Taken,
}

/// Per-connection handler: drains every frame each socket read buffered,
/// batches the prediction run, and answers in request order.
struct Connection<'a> {
    stream: TcpStream,
    shared: &'a Arc<Shared>,
    reader: FrameReader,
    /// This connection's reply slots (shared with the worker pool).
    table: Arc<ReplyTable>,
    /// Decoded-but-unprocessed frames from the current read burst.
    actions: Vec<Action>,
    /// Jobs staged for the next dispatch (reused between bursts).
    jobs: Vec<Job>,
    /// Reply buffers collected from the table (reused between bursts).
    replies: Vec<Vec<u8>>,
    /// Scratch for handler-side (control/error) responses.
    scratch: Vec<u8>,
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut conn = Connection {
        stream,
        shared,
        reader: FrameReader::new(),
        table: Arc::new(ReplyTable::new()),
        actions: Vec::new(),
        jobs: Vec::new(),
        replies: Vec::new(),
        scratch: Vec::new(),
    };
    conn.run();
}

impl Connection<'_> {
    fn run(&mut self) {
        loop {
            if self.shared.stop.load(Ordering::Acquire) {
                return;
            }
            match self.reader.fill(&mut self.stream) {
                Ok(Fill::Idle) => continue,
                Ok(Fill::Read(_)) => {}
                Err(_) => return,
            }
            // Decode every frame this read completed — that's the whole
            // pipelined burst — then process it as one unit.
            let mut oversized = None;
            loop {
                match self.reader.next_frame(self.shared.max_frame) {
                    Ok(Some(frame)) => {
                        let action = classify(frame);
                        self.actions.push(action);
                    }
                    Ok(None) => break,
                    Err(FrameError::TooLarge { announced, max }) => {
                        // The stream is desynced past the oversized
                        // frame; answer what came before it, then reply
                        // with the reason and drop the connection.
                        oversized = Some(Response::err(
                            0,
                            format!("frame of {announced} bytes exceeds {max}"),
                        ));
                        break;
                    }
                    Err(_) => unreachable!("next_frame only fails on size"),
                }
            }
            if !self.process_burst() {
                return;
            }
            if let Some(resp) = oversized {
                self.shared.errors.inc();
                let _ = self.respond(&resp);
                return;
            }
        }
    }

    /// Processes the decoded burst in order. Returns false when the
    /// connection must close (shutdown or a dead socket).
    fn process_burst(&mut self) -> bool {
        let mut i = 0;
        while i < self.actions.len() {
            match &self.actions[i] {
                Action::Predict(_) => {
                    let end = i + self.actions[i..]
                        .iter()
                        .take_while(|a| matches!(a, Action::Predict(_)))
                        .count();
                    if !self.flush_predicts(i, end) {
                        self.actions.clear();
                        return false;
                    }
                    i = end;
                }
                Action::Reply(_) => {
                    let Action::Reply(resp) =
                        std::mem::replace(&mut self.actions[i], Action::Taken)
                    else {
                        unreachable!()
                    };
                    if !resp.ok {
                        self.shared.errors.inc();
                    }
                    if !self.respond(&resp) {
                        self.actions.clear();
                        return false;
                    }
                    i += 1;
                }
                Action::Control(_) => {
                    let Action::Control(req) =
                        std::mem::replace(&mut self.actions[i], Action::Taken)
                    else {
                        unreachable!()
                    };
                    if !self.control(&req) {
                        self.actions.clear();
                        return false;
                    }
                    i += 1;
                }
                Action::Taken => unreachable!("scan never revisits a taken slot"),
            }
        }
        self.actions.clear();
        true
    }

    /// Dispatches `actions[start..end]` (all `Predict`) as one batch and
    /// writes every reply in one vectored write. Returns false when the
    /// socket died.
    fn flush_predicts(&mut self, start: usize, end: usize) -> bool {
        let n = end - start;
        let generation = self.table.begin(n);
        let t0 = Instant::now();
        let t0_ns = obs::trace::now_ns();
        let first_id = self
            .shared
            .next_req_id
            .fetch_add(n as u64, Ordering::Relaxed)
            + 1;
        for (index, action) in self.actions[start..end].iter_mut().enumerate() {
            let Action::Predict(req) = std::mem::replace(action, Action::Taken) else {
                unreachable!("flush_predicts covers a Predict run")
            };
            let req_id = first_id + index as u64;
            if obs::trace::enabled() {
                // Flow start before closing the recv slice, so its
                // timestamp falls inside the slice and Perfetto draws
                // the arrow from here to the worker's request span.
                obs::trace::flow_start(obs::trace::intern("serve.req"), req_id);
                obs::trace::complete(obs::trace::intern("serve.recv"), t0_ns, &[]);
            }
            self.jobs.push(Job {
                req,
                t0,
                t0_ns,
                req_id,
                reply: Arc::clone(&self.table),
                generation,
                index,
            });
        }
        self.shared.dispatch.push_batch(self.jobs.drain(..));
        // Workers drain the shards even after stop, so the replies
        // normally arrive; the timeout covers a worker that died.
        if self
            .table
            .wait_collect(generation, &mut self.replies, REPLY_TIMEOUT)
        {
            let spans: Vec<&[u8]> = self.replies[..n].iter().map(Vec::as_slice).collect();
            write_frames_vectored(&mut self.stream, &spans).is_ok()
        } else {
            let resp = Response::err(0, "server shutting down");
            for _ in 0..n {
                self.shared.errors.inc();
                if !self.respond(&resp) {
                    return false;
                }
            }
            true
        }
    }

    /// Handles one control command inline. Returns false when the
    /// connection should close.
    fn control(&mut self, req: &Request) -> bool {
        let shared = self.shared;
        match req.cmd.as_str() {
            "ping" => {
                let resp = Response::ok(shared.store.current_version());
                self.respond(&resp)
            }
            "version" => {
                let snap = shared.store.load();
                let mut resp = Response::ok(snap.version);
                resp.label = Some(snap.meta.label.clone());
                self.respond(&resp)
            }
            "stats" => {
                let stats = shared.cache.stats();
                let mut resp = Response::ok(shared.store.current_version());
                resp.stats = Some(CacheStatsReply {
                    lookups: stats.lookups as f64,
                    hits: stats.hits as f64,
                    misses: stats.misses as f64,
                    evictions: stats.evictions as f64,
                    hit_rate: stats.hit_rate(),
                    resident: shared.cache.len() as f64,
                    shards: shared.cache.num_shards() as f64,
                });
                resp.server = Some(server_stats(shared));
                self.respond(&resp)
            }
            "scrape" => {
                shared.publish_live();
                let mut resp = Response::ok(shared.store.current_version());
                resp.text = Some(render_exposition(shared));
                self.respond(&resp)
            }
            "reload" => {
                let resp = reload(req, shared);
                if !resp.ok {
                    shared.errors.inc();
                }
                self.respond(&resp)
            }
            "shutdown" => {
                let resp = Response::ok(shared.store.current_version());
                let _ = self.respond(&resp);
                shared.stop.store(true, Ordering::Release);
                shared.dispatch.wake_all();
                false
            }
            other => {
                shared.errors.inc();
                let resp = Response::err(0, format!("unknown command `{other}`"));
                self.respond(&resp)
            }
        }
    }

    /// Writes one handler-side response frame. Hot shapes render through
    /// the serde-free writer; anything else falls back to serde — and a
    /// response that fails even that is **degraded to an error frame**
    /// (never a panic: the server documents that malformed input and
    /// internal serialization trouble cannot take it down).
    fn respond(&mut self, resp: &Response) -> bool {
        self.scratch.clear();
        if !fast::write_response(&mut self.scratch, resp) {
            match serde_json::to_string(resp) {
                Ok(json) => self.scratch.extend_from_slice(json.as_bytes()),
                Err(e) => {
                    self.shared.serialize_errors.inc();
                    obs::log!(Warn, "serve: response failed to serialize: {e}");
                    let fallback =
                        Response::err(0, format!("internal error: response serialization: {e}"));
                    let wrote = fast::write_response(&mut self.scratch, &fallback);
                    debug_assert!(wrote, "error shape is always fast-serializable");
                }
            }
        }
        write_frame(&mut self.stream, &self.scratch).is_ok()
    }
}

/// Decodes one frame into an [`Action`]: the serde-free parser handles
/// the canonical shape; everything else (escapes, missing fields,
/// garbage) goes through the serde path so error semantics — including
/// exact error text — match the previous implementation.
fn classify(frame: &[u8]) -> Action {
    let req = match fast::parse_request(frame) {
        Some(req) => req,
        None => {
            let text = match std::str::from_utf8(frame) {
                Ok(text) => text,
                Err(e) => {
                    return Action::Reply(Box::new(Response::err(0, format!("bad request: {e}"))))
                }
            };
            match serde_json::from_str::<Request>(text) {
                Ok(req) => req,
                Err(e) => {
                    return Action::Reply(Box::new(Response::err(0, format!("bad request: {e}"))))
                }
            }
        }
    };
    match req.cmd.as_str() {
        "predict" | "select" => match validate(&req) {
            Ok(()) => Action::Predict(req),
            Err(reason) => Action::Reply(Box::new(Response::err(0, reason))),
        },
        _ => Action::Control(req),
    }
}

/// Builds the `server` section of the stats frame: uptime, build info,
/// the rolling-window view, and the current SLO + quality states.
fn server_stats(shared: &Arc<Shared>) -> ServerStatsReply {
    shared.publish_live();
    let window = shared.series.window(shared.stats_window);
    let (qps, hit_rate) = window
        .as_ref()
        .map(|w| {
            (
                w.rate("serve.requests"),
                w.ratio("cache.hits", "cache.misses"),
            )
        })
        .unwrap_or((0.0, 0.0));
    let (p50_us, p99_us) = window
        .as_ref()
        .and_then(|w| w.hist_delta("serve.request_ns"))
        .map(|d| {
            (
                d.percentile(0.50) as f64 / 1_000.0,
                d.percentile(0.99) as f64 / 1_000.0,
            )
        })
        .unwrap_or((0.0, 0.0));
    ServerStatsReply {
        uptime_s: shared.started.elapsed().as_secs_f64(),
        build_version: telemetry::BUILD_VERSION.to_string(),
        build_git: telemetry::BUILD_GIT.to_string(),
        precision: shared.store.load().precision().name().to_string(),
        window_s: shared.stats_window.as_secs_f64(),
        qps,
        p50_us,
        p99_us,
        hit_rate,
        slo: shared
            .slo
            .status()
            .into_iter()
            .map(|s| SloReply {
                name: s.name,
                target: s.target,
                burn_fast: s.burn_fast,
                burn_slow: s.burn_slow,
                firing: s.firing,
                alerts: s.alerts as f64,
            })
            .collect(),
        quality: obs::quality::snapshot()
            .into_iter()
            .map(|q| QualityReply {
                model: q.model,
                mape: q.mape,
                max_ape: q.max_ape,
                samples: q.samples as f64,
                alerts: q.alerts as f64,
                above_band: q.above_band,
            })
            .collect(),
        energy: super::protocol::EnergyReply {
            predicted_joules_saved: shared.ledger.total_joules(),
            decisions: shared.ledger.decisions() as f64,
            window_watts_saved: window
                .as_ref()
                .map(|w| w.rate("energy.predicted_joules_saved_mj") / 1e3)
                .unwrap_or(0.0),
            journal_appended: obs::global().counter("journal.appended").get() as f64,
            journal_dropped: obs::global().counter("journal.dropped").get() as f64,
        },
    }
}

fn validate(req: &Request) -> Result<(), String> {
    let need = |name: &str, v: Option<f64>| -> Result<f64, String> {
        match v {
            Some(v) if v.is_finite() => Ok(v),
            Some(_) => Err(format!("`{name}` must be finite")),
            None => Err(format!("`{}` requires `{name}`", req.cmd)),
        }
    };
    if req.workload.is_none() {
        return Err(format!("`{}` requires `workload`", req.cmd));
    }
    let fp = need("fp_active", req.fp_active)?;
    let dram = need("dram_active", req.dram_active)?;
    let exec = need("exec_time", req.exec_time)?;
    if !(0.0..=1.0).contains(&fp) || !(0.0..=1.0).contains(&dram) {
        return Err("activities must lie in [0, 1]".to_string());
    }
    if exec <= 0.0 {
        return Err("`exec_time` must be positive".to_string());
    }
    if req.cmd == "select" {
        let name = req
            .objective
            .as_deref()
            .ok_or_else(|| "`select` requires `objective`".to_string())?;
        parse_objective(name)?;
        if let Some(th) = req.threshold {
            if !th.is_finite() || th < 0.0 {
                return Err("`threshold` must be a non-negative fraction".to_string());
            }
        }
    }
    Ok(())
}

fn reload(req: &Request, shared: &Arc<Shared>) -> Response {
    let path = match req.path.as_deref() {
        Some(p) => p,
        None => return Response::err(0, "`reload` requires `path`"),
    };
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(e) => return Response::err(0, format!("read {path}: {e}")),
    };
    let models = match PowerTimeModels::from_json(&json) {
        Ok(models) => models,
        Err(e) => return Response::err(0, format!("parse {path}: {e}")),
    };
    let spec = shared.store.load().spec.clone();
    let version = shared.store.publish(ModelSnapshot::with_precision(
        models,
        spec,
        SnapshotMeta {
            label: path.to_string(),
            dataset_rows: 0,
            train_seconds: 0.0,
        },
        shared.precision,
    ));
    obs::log!(
        Info,
        "serve: reloaded models from {path} as version {version}"
    );
    // A publish invalidates every worker's per-snapshot fragment cache;
    // wake parked workers so an idle server rebinds promptly too.
    shared.dispatch.wake_all();
    Response::ok(version)
}

/// Builds the default-clock reference sample a wire request stands for.
/// Only the fields the online phase reads are populated (workload,
/// activities, clock, exec time); the rest are zero. Shared with
/// [`super::journal::replay`] so the replayed reference is bit-identical
/// to the served one.
pub(crate) fn reference_from(req: &Request, max_core_mhz: f64) -> MetricSample {
    MetricSample {
        workload: req.workload.clone().unwrap_or_default(),
        run: 0,
        fp64_active: req.fp_active.unwrap_or(0.0),
        fp32_active: 0.0,
        sm_app_clock: max_core_mhz,
        dram_active: req.dram_active.unwrap_or(0.0),
        gr_engine_active: 0.0,
        gpu_utilization: 0.0,
        power_usage: 0.0,
        sm_active: 0.0,
        sm_occupancy: 0.0,
        pcie_tx_bytes: 0.0,
        pcie_rx_bytes: 0.0,
        exec_time: req.exec_time.unwrap_or(0.0),
    }
}

/// One worker's cached serialized profile: the numeric response fragment
/// plus the vectors `select` needs. Both are pure functions of the
/// quantized cache key and the exact exec-time bits (the workload string
/// only names the profile — it never enters the math), so the entry is
/// shared across workloads that quantize alike.
struct Fragment {
    profile: PredictedProfile,
    tail: Vec<u8>,
    /// FNV-1a digest of the predicted curves, computed once on insert
    /// so journaled fragment hits don't re-hash the profile.
    digest: u64,
}

/// Interned trace/metric handles the worker hot loop records through.
struct WorkerStats {
    requests: obs::Counter,
    batches: obs::Counter,
    latency: obs::Histogram,
    predict_latency: obs::Histogram,
    batch_len: obs::Histogram,
    trace_request: u32,
    trace_predict: u32,
    trace_flow: u32,
    trace_workload: u32,
    trace_version: u32,
    trace_hit: u32,
}

/// Everything [`respond_job`] needs beyond the job itself, bound once
/// per snapshot rebind (the prefix and version change with the
/// snapshot; the ledger and journal producer outlive it).
struct ResponderCtx<'a> {
    stats: &'a WorkerStats,
    prefix: &'a [u8],
    version: u64,
    ledger: &'a super::journal::EnergyLedger,
    journal: Option<&'a obs::journal::JournalProducer>,
}

fn worker_loop(
    shared: &Arc<Shared>,
    worker: usize,
    max_batch: usize,
    journal: Option<obs::journal::JournalProducer>,
) {
    let reg = obs::global();
    let stats = WorkerStats {
        requests: reg.counter("serve.requests"),
        batches: reg.counter("serve.batches"),
        latency: reg.histogram("serve.request_ns"),
        predict_latency: reg.histogram("predict.request_ns"),
        batch_len: reg.histogram("serve.batch_len"),
        trace_request: obs::trace::intern("serve.request"),
        trace_predict: obs::trace::intern("predict.request"),
        trace_flow: obs::trace::intern("serve.req"),
        trace_workload: obs::trace::intern("workload"),
        trace_version: obs::trace::intern("version"),
        trace_hit: obs::trace::intern("hit"),
    };
    let mut batch: Vec<Job> = Vec::with_capacity(max_batch);
    let mut scratch: Vec<u8> = Vec::with_capacity(8 * 1024);
    let mut jbuf: Vec<u8> = Vec::with_capacity(256);
    let mut miss_refs: Vec<MetricSample> = Vec::new();
    let mut miss_idx: Vec<usize> = Vec::new();
    'rebind: loop {
        // Bind a predictor to the current snapshot; the Arc keeps it
        // alive (and bitwise stable) even if a publish lands mid-batch.
        let snap = shared.store.load();
        // Every sweep runs on the snapshot's packed batch-fused engines
        // (f64 mode is bitwise-identical to the training-path forward).
        let predictor = Predictor::with_engines(&snap.models, &snap.engines, snap.spec.clone());
        let freqs = DvfsGrid::for_spec(&snap.spec).used();
        // The fixed response prefix for this snapshot: everything up to
        // the profile's workload string, version already rendered.
        let mut prefix: Vec<u8> = Vec::new();
        prefix.extend_from_slice(fast::RESPONSE_OK_HEAD);
        fast::write_f64(&mut prefix, snap.version as f64);
        prefix.extend_from_slice(fast::RESPONSE_PROFILE_HEAD);
        // Serialized-fragment cache, valid exactly as long as this
        // binding: a publish changes the models (and the version in the
        // prefix), so rebinding drops it wholesale.
        let mut fragments: HashMap<(CacheKey, u64), Fragment> = HashMap::new();
        let ctx = ResponderCtx {
            stats: &stats,
            prefix: &prefix,
            version: snap.version,
            ledger: &shared.ledger,
            journal: journal.as_ref(),
        };
        loop {
            shared
                .dispatch
                .pop_batch_into(worker, max_batch, POLL, &mut batch);
            if batch.is_empty() {
                if shared.stop.load(Ordering::Acquire) && shared.dispatch.is_empty() {
                    return;
                }
                if shared.store.changed_since(snap.version) {
                    continue 'rebind;
                }
                continue;
            }
            stats.batches.inc();
            stats.batch_len.record(batch.len() as u64);
            // Pass 1: answer fragment-cache hits immediately; stage the
            // misses for one coalesced predict_batch_cached call.
            miss_refs.clear();
            miss_idx.clear();
            let mut front_hits = 0u64;
            for (i, job) in batch.iter().enumerate() {
                let key = fragment_key(&shared.cache, &snap.spec, &job.req, &freqs);
                if let Some(fragment) = fragments.get(&key) {
                    front_hits += 1;
                    respond_job(&ctx, job, fragment, &key, true, &mut scratch, &mut jbuf);
                } else {
                    miss_refs.push(reference_from(&job.req, snap.spec.max_core_mhz));
                    miss_idx.push(i);
                }
            }
            if front_hits > 0 {
                shared.cache.record_front_hits(front_hits);
            }
            if !miss_refs.is_empty() {
                let profiles = predictor.predict_batch_cached(&shared.cache, &miss_refs, &freqs);
                for (&i, profile) in miss_idx.iter().zip(profiles) {
                    let job = &batch[i];
                    let key = fragment_key(&shared.cache, &snap.spec, &job.req, &freqs);
                    let mut tail = Vec::new();
                    fast::write_profile_tail(&mut tail, &profile);
                    let digest = super::journal::profile_digest(&profile);
                    // Epoch reset at capacity: cheaper than LRU chains
                    // for a cache this small, and misses just recompute.
                    if fragments.len() >= FRAGMENT_CACHE_MAX {
                        fragments.clear();
                    }
                    let fragment = fragments.entry(key).or_insert(Fragment {
                        profile,
                        tail,
                        digest,
                    });
                    respond_job(&ctx, job, fragment, &key, false, &mut scratch, &mut jbuf);
                }
            }
            batch.clear();
            if shared.store.changed_since(snap.version) {
                continue 'rebind;
            }
        }
    }
}

/// The fragment-cache key: the L2 cache key (quantized activities +
/// device/grid fingerprint) extended with the exact exec-time bits that
/// anchor absolute times. Everything in a predict/select response except
/// the workload name is a pure function of this pair and the snapshot.
fn fragment_key(
    cache: &ShardedProfileCache,
    spec: &gpu_model::DeviceSpec,
    req: &Request,
    freqs: &[f64],
) -> (CacheKey, u64) {
    (
        cache.key(
            spec,
            req.fp_active.unwrap_or(0.0),
            req.dram_active.unwrap_or(0.0),
            freqs,
        ),
        req.exec_time.unwrap_or(0.0).to_bits(),
    )
}

/// Composes one job's response from the cached fragment and fills the
/// connection's reply slot. Byte-identical to serde-serializing the
/// equivalent [`Response`] (pinned by protocol tests); `select` re-runs
/// the objective on the cached vectors, which is deterministic in its
/// inputs, so hits and misses answer bitwise alike.
///
/// This is also where the audit trail forks off: every `select` books
/// its predicted saving into the energy ledger, and with the journal
/// enabled the full [`super::journal::DecisionRecord`] is encoded into
/// `jbuf` and handed to this worker's bounded ring — a full ring drops
/// (`journal.dropped`), it never blocks the reply.
fn respond_job(
    ctx: &ResponderCtx<'_>,
    job: &Job,
    fragment: &Fragment,
    key: &(CacheKey, u64),
    hit: bool,
    scratch: &mut Vec<u8>,
    jbuf: &mut Vec<u8>,
) {
    let stats = ctx.stats;
    let version = ctx.version;
    let predict_t0 = Instant::now();
    let predict_t0_ns = obs::trace::now_ns();
    let selection = if job.req.cmd == "select" {
        let objective = parse_objective(job.req.objective.as_deref().unwrap_or(""))
            .expect("validated at dispatch");
        Some(select_optimal(
            &fragment.profile.frequencies,
            &fragment.profile.energy_j,
            &fragment.profile.time_s,
            objective,
            job.req.threshold,
        ))
    } else {
        None
    };
    let profile = &fragment.profile;
    let max_idx = profile.max_freq_index();
    if let Some(s) = &selection {
        ctx.ledger
            .record(profile.energy_j[max_idx] - profile.energy_j[s.index]);
    }
    if let Some(producer) = ctx.journal {
        let (chosen, decided_idx) = match &selection {
            Some(s) => (
                Some(super::journal::ChosenClock {
                    index: s.index as u32,
                    frequency_mhz: s.frequency_mhz,
                }),
                s.index,
            ),
            None => (None, max_idx),
        };
        super::journal::DecisionView {
            version,
            req_id: job.req_id,
            select: selection.is_some(),
            hit,
            workload: job.req.workload.as_deref().unwrap_or(""),
            fp_active: job.req.fp_active.unwrap_or(0.0),
            dram_active: job.req.dram_active.unwrap_or(0.0),
            exec_time: job.req.exec_time.unwrap_or(0.0),
            objective: job.req.objective.as_deref(),
            threshold: job.req.threshold,
            cache_key: key.0.shard_hash(),
            profile_digest: fragment.digest,
            chosen,
            predicted_time_s: profile.time_s[decided_idx],
            predicted_energy_j: profile.energy_j[decided_idx],
            baseline_energy_j: profile.energy_j[max_idx],
        }
        .encode(jbuf);
        producer.append_buf(jbuf);
    }
    scratch.clear();
    scratch.extend_from_slice(ctx.prefix);
    fast::write_json_str(scratch, job.req.workload.as_deref().unwrap_or(""));
    scratch.extend_from_slice(&fragment.tail);
    scratch.extend_from_slice(fast::RESPONSE_SELECTION_HEAD);
    match &selection {
        Some(s) => fast::write_selection(scratch, s),
        None => scratch.extend_from_slice(b"null"),
    }
    scratch.extend_from_slice(fast::RESPONSE_TAIL);
    let workload = job.req.workload.as_deref().unwrap_or("?");
    // Fragment hits answer without entering the predictor, so mirror the
    // predictor's own per-request surface here (latency histogram +
    // `predict.request` span with `hit=true`): predict accounting stays
    // 1:1 with requests no matter which cache layer answered. Misses
    // already recorded theirs inside `predict_batch_cached`.
    if hit {
        stats.predict_latency.record_duration(predict_t0.elapsed());
        if obs::trace::enabled() {
            obs::trace::complete(
                stats.trace_predict,
                predict_t0_ns,
                &[
                    (
                        stats.trace_workload,
                        obs::trace::ArgValue::Str(obs::trace::intern(workload)),
                    ),
                    (stats.trace_hit, obs::trace::ArgValue::Bool(true)),
                ],
            );
        }
    }
    stats.requests.inc();
    stats.latency.record_duration(job.t0.elapsed());
    if obs::trace::enabled() {
        // Flow end inside the request span (emitted just before the
        // span closes) — the arrow head lands on the worker slice.
        obs::trace::flow_end(stats.trace_flow, job.req_id);
        obs::trace::complete(
            stats.trace_request,
            job.t0_ns,
            &[
                (
                    stats.trace_workload,
                    obs::trace::ArgValue::Str(obs::trace::intern(workload)),
                ),
                (stats.trace_version, obs::trace::ArgValue::U64(version)),
            ],
        );
    }
    // A closed generation (handler timed out / moved on) is fine; the
    // work still warmed the caches.
    let _ = job.reply.fill(job.generation, job.index, scratch);
}

/// A blocking protocol client (loadgen, tests, CLI helpers).
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    max_frame: usize,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            reader: FrameReader::new(),
            max_frame: super::framing::DEFAULT_MAX_FRAME,
        })
    }

    /// Sends one request and waits for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, FrameError> {
        let payload = serde_json::to_string(req).expect("request serializes");
        write_frame(&mut self.stream, payload.as_bytes()).map_err(FrameError::Io)?;
        self.read_response()
    }

    /// Sends raw bytes as one frame (protocol-abuse tests).
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Sends several payloads as one pipelined burst: every frame in a
    /// single vectored write (the server answers them in order).
    pub fn send_frames(&mut self, payloads: &[&[u8]]) -> io::Result<()> {
        write_frames_vectored(&mut self.stream, payloads)
    }

    /// Reads one response frame (pairs with [`Client::send_raw`]).
    pub fn read_response(&mut self) -> Result<Response, FrameError> {
        let frame = self.read_frame_raw()?;
        let text = std::str::from_utf8(&frame)
            .map_err(|e| FrameError::Io(io::Error::new(io::ErrorKind::InvalidData, e)))?;
        serde_json::from_str(text).map_err(|e| {
            FrameError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response: {e}"),
            ))
        })
    }

    /// Reads one raw response frame without parsing it (the load
    /// generator scans these bytes instead of building a value tree).
    pub fn read_frame_raw(&mut self) -> Result<Vec<u8>, FrameError> {
        self.reader.read_frame(&mut self.stream, self.max_frame)
    }

    /// The underlying stream (tests poke at it to truncate frames).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
