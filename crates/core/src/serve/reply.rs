//! Pooled reply slots for the serve request path.
//!
//! The previous path allocated one `mpsc::channel()` per request: a
//! heap-allocated queue, two `Arc`s, and a condvar handshake, all
//! discarded after a single message. A [`ReplyTable`] replaces that with
//! one table per connection, alive for the connection's lifetime: the
//! handler opens a *generation* covering the current pipelined batch,
//! workers fill indexed slots by **swapping** their serialization
//! buffer into the slot (taking the slot's previous buffer back as their
//! next scratch — zero copies, zero steady-state allocation), and the
//! handler collects the filled buffers the same way. Generations make
//! timeouts safe: a late fill against a closed generation is dropped
//! without touching the next batch's slots.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

struct Slot {
    buf: Vec<u8>,
    full: bool,
}

struct Inner {
    generation: u64,
    expected: usize,
    filled: usize,
    slots: Vec<Slot>,
}

/// Per-connection reply slots shared between one handler and the worker
/// pool. See the module docs for the lifecycle.
pub struct ReplyTable {
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl Default for ReplyTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplyTable {
    /// Creates an empty table (no open generation).
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                generation: 0,
                expected: 0,
                filled: 0,
                slots: Vec::new(),
            }),
            ready: Condvar::new(),
        }
    }

    /// Opens a new generation expecting `n` replies and returns its id.
    /// Implicitly closes the previous generation: stragglers filling
    /// against the old id are dropped.
    pub fn begin(&self, n: usize) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        inner.generation += 1;
        inner.expected = n;
        inner.filled = 0;
        while inner.slots.len() < n {
            inner.slots.push(Slot {
                buf: Vec::new(),
                full: false,
            });
        }
        for slot in inner.slots.iter_mut().take(n) {
            slot.full = false;
        }
        inner.generation
    }

    /// Fills slot `index` of `generation` by swapping `buf` into it;
    /// `buf` comes back holding the slot's previous buffer (reusable
    /// capacity). Returns false — dropping the reply — when the
    /// generation has moved on (handler timed out or reset).
    pub fn fill(&self, generation: u64, index: usize, buf: &mut Vec<u8>) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if inner.generation != generation || index >= inner.expected {
            return false;
        }
        let slot = &mut inner.slots[index];
        if slot.full {
            return false;
        }
        std::mem::swap(&mut slot.buf, buf);
        slot.full = true;
        inner.filled += 1;
        if inner.filled == inner.expected {
            self.ready.notify_one();
        }
        true
    }

    /// Waits until every slot of `generation` is filled, then swaps each
    /// slot buffer into `out[i]` (growing `out` as needed; handler-side
    /// buffers recycle the same way worker-side scratch does). On
    /// timeout the generation is closed so late fills are dropped, and
    /// `false` is returned — `out` contents are then unspecified.
    pub fn wait_collect(&self, generation: u64, out: &mut Vec<Vec<u8>>, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap();
        while inner.generation == generation && inner.filled < inner.expected {
            let now = Instant::now();
            let Some(left) = deadline.checked_duration_since(now) else {
                break;
            };
            let (guard, _) = self.ready.wait_timeout(inner, left).unwrap();
            inner = guard;
        }
        if inner.generation != generation || inner.filled < inner.expected {
            // Close the generation: stragglers must not land in slots
            // the next batch will reuse.
            if inner.generation == generation {
                inner.generation += 1;
                inner.expected = 0;
            }
            return false;
        }
        while out.len() < inner.expected {
            out.push(Vec::new());
        }
        for (slot, dst) in inner.slots.iter_mut().zip(out.iter_mut()) {
            std::mem::swap(&mut slot.buf, dst);
            slot.full = false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fill_and_collect_round_trip_in_index_order() {
        let table = ReplyTable::new();
        let generation = table.begin(3);
        // Fill out of order; collection is by index, not arrival.
        for index in [2usize, 0, 1] {
            let mut buf = format!("reply-{index}").into_bytes();
            assert!(table.fill(generation, index, &mut buf));
        }
        let mut out = Vec::new();
        assert!(table.wait_collect(generation, &mut out, Duration::from_secs(1)));
        let got: Vec<String> = out
            .iter()
            .map(|b| String::from_utf8(b.clone()).unwrap())
            .collect();
        assert_eq!(got, ["reply-0", "reply-1", "reply-2"]);
    }

    #[test]
    fn buffers_recycle_through_the_swap() {
        let table = ReplyTable::new();
        let mut scratch = Vec::with_capacity(4096);
        let mut out = vec![Vec::new()];
        for round in 0..3 {
            let generation = table.begin(1);
            scratch.clear();
            scratch.extend_from_slice(format!("round-{round}").as_bytes());
            assert!(table.fill(generation, 0, &mut scratch));
            assert!(table.wait_collect(generation, &mut out, Duration::from_secs(1)));
            assert_eq!(out[0], format!("round-{round}").as_bytes());
        }
        // After round 0 the original 4096-capacity buffer circulates
        // slot→out→(next fill swaps it back); no round allocates afresh
        // beyond the first rotation.
        assert!(scratch.capacity() > 0);
    }

    #[test]
    fn stale_generation_fill_is_dropped() {
        let table = ReplyTable::new();
        let old = table.begin(1);
        let new = table.begin(1);
        let mut buf = b"stale".to_vec();
        assert!(!table.fill(old, 0, &mut buf), "old generation must reject");
        assert!(table.fill(new, 0, &mut buf));
    }

    #[test]
    fn timeout_closes_the_generation() {
        let table = ReplyTable::new();
        let generation = table.begin(2);
        let mut buf = b"one".to_vec();
        assert!(table.fill(generation, 0, &mut buf));
        let mut out = Vec::new();
        assert!(!table.wait_collect(generation, &mut out, Duration::from_millis(10)));
        // The straggler now lands in a closed generation and is dropped.
        let mut late = b"late".to_vec();
        assert!(!table.fill(generation, 1, &mut late));
        // A fresh batch is unaffected.
        let next = table.begin(1);
        let mut ok = b"ok".to_vec();
        assert!(table.fill(next, 0, &mut ok));
        assert!(table.wait_collect(next, &mut out, Duration::from_secs(1)));
        assert_eq!(out[0], b"ok");
    }

    #[test]
    fn double_fill_of_one_slot_is_rejected() {
        let table = ReplyTable::new();
        let generation = table.begin(1);
        let mut a = b"first".to_vec();
        let mut b = b"second".to_vec();
        assert!(table.fill(generation, 0, &mut a));
        assert!(!table.fill(generation, 0, &mut b));
        let mut out = Vec::new();
        assert!(table.wait_collect(generation, &mut out, Duration::from_secs(1)));
        assert_eq!(out[0], b"first");
    }

    #[test]
    fn concurrent_fillers_wake_the_collector() {
        let table = Arc::new(ReplyTable::new());
        let n = 16;
        let generation = table.begin(n);
        std::thread::scope(|scope| {
            for index in 0..n {
                let table = Arc::clone(&table);
                scope.spawn(move || {
                    let mut buf = index.to_string().into_bytes();
                    assert!(table.fill(generation, index, &mut buf));
                });
            }
            let mut out = Vec::new();
            assert!(table.wait_collect(generation, &mut out, Duration::from_secs(5)));
            for (index, buf) in out.iter().take(n).enumerate() {
                assert_eq!(buf, index.to_string().as_bytes());
            }
        });
    }
}
