//! Length-prefixed framing for the serve wire protocol.
//!
//! Every frame is a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 JSON. The reader is incremental: it accumulates
//! bytes across short reads (and read timeouts, which the server uses to
//! stay responsive to shutdown), hands back at most one frame per poll,
//! and never blocks longer than the underlying stream's own timeout.
//! Pipelined frames queue up in the internal buffer and drain one per
//! call without touching the socket again.

use std::io::{self, Read, Write};

/// Frames larger than this are rejected before any allocation of the
/// payload — a garbage or hostile length prefix must not OOM the server.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream. `clean` is false if it closed
    /// mid-frame (a truncated frame).
    Closed {
        /// True when the stream ended exactly on a frame boundary.
        clean: bool,
    },
    /// The length prefix announced a payload above the configured limit.
    TooLarge {
        /// The announced payload length.
        announced: usize,
        /// The configured maximum.
        max: usize,
    },
    /// Any other I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed { clean: true } => write!(f, "peer closed the connection"),
            FrameError::Closed { clean: false } => {
                write!(f, "peer closed the connection mid-frame (truncated frame)")
            }
            FrameError::TooLarge { announced, max } => {
                write!(f, "frame of {announced} bytes exceeds the {max}-byte limit")
            }
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame reader: owns the partial-read buffer for one stream.
#[derive(Default)]
pub struct FrameReader {
    pending: Vec<u8>,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tries to pull one complete frame out of `pending` without I/O.
    fn take_buffered(&mut self, max_frame: usize) -> Result<Option<Vec<u8>>, FrameError> {
        if self.pending.len() < 4 {
            return Ok(None);
        }
        let announced = u32::from_be_bytes([
            self.pending[0],
            self.pending[1],
            self.pending[2],
            self.pending[3],
        ]) as usize;
        if announced > max_frame {
            return Err(FrameError::TooLarge {
                announced,
                max: max_frame,
            });
        }
        if self.pending.len() < 4 + announced {
            return Ok(None);
        }
        let mut frame = self.pending.split_off(4 + announced);
        std::mem::swap(&mut frame, &mut self.pending);
        frame.drain(..4);
        Ok(Some(frame))
    }

    /// Polls for the next frame. Returns `Ok(None)` when no complete
    /// frame is available yet (short read or read timeout) — the caller
    /// decides whether to retry or to act on a shutdown flag first.
    pub fn poll_frame<R: Read>(
        &mut self,
        stream: &mut R,
        max_frame: usize,
    ) -> Result<Option<Vec<u8>>, FrameError> {
        // Drain pipelined frames before touching the socket again.
        if let Some(frame) = self.take_buffered(max_frame)? {
            return Ok(Some(frame));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => Err(FrameError::Closed {
                clean: self.pending.is_empty(),
            }),
            Ok(n) => {
                self.pending.extend_from_slice(&chunk[..n]);
                self.take_buffered(max_frame)
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(FrameError::Io(e)),
        }
    }

    /// Blocking convenience: polls until a frame arrives or the stream
    /// fails. Used by clients (loadgen, tests); the server uses
    /// [`FrameReader::poll_frame`] so it can interleave shutdown checks.
    pub fn read_frame<R: Read>(
        &mut self,
        stream: &mut R,
        max_frame: usize,
    ) -> Result<Vec<u8>, FrameError> {
        loop {
            if let Some(frame) = self.poll_frame(stream, max_frame)? {
                return Ok(frame);
            }
        }
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(stream: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_including_pipelined() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"a\":1}").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(wire);
        assert_eq!(
            reader.read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            b"{\"a\":1}"
        );
        // The second frame was already buffered; no further read needed.
        assert_eq!(
            reader.take_buffered(DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"second"
        );
    }

    #[test]
    fn truncated_frame_reports_unclean_close() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello world").unwrap();
        wire.truncate(wire.len() - 3);
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(wire);
        match reader.read_frame(&mut cursor, DEFAULT_MAX_FRAME) {
            Err(FrameError::Closed { clean: false }) => {}
            other => panic!("expected unclean close, got {other:?}"),
        }
    }

    #[test]
    fn clean_eof_between_frames() {
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(Vec::new());
        match reader.read_frame(&mut cursor, DEFAULT_MAX_FRAME) {
            Err(FrameError::Closed { clean: true }) => {}
            other => panic!("expected clean close, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        // 256 MiB announced against a 1 MiB cap: must fail from the
        // header alone, with no payload bytes present.
        let wire = (256u32 << 20).to_be_bytes().to_vec();
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(wire);
        match reader.read_frame(&mut cursor, DEFAULT_MAX_FRAME) {
            Err(FrameError::TooLarge { announced, max }) => {
                assert_eq!(announced, 256 << 20);
                assert_eq!(max, DEFAULT_MAX_FRAME);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn byte_at_a_time_delivery_reassembles() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"slow").unwrap();
        let mut reader = FrameReader::new();
        let mut got = None;
        for byte in wire {
            let mut one = Cursor::new(vec![byte]);
            if let Some(frame) = reader.poll_frame(&mut one, DEFAULT_MAX_FRAME).unwrap() {
                got = Some(frame);
            }
        }
        assert_eq!(got.as_deref(), Some(b"slow".as_slice()));
    }
}
