//! Length-prefixed framing for the serve wire protocol.
//!
//! Every frame is a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 JSON. The reader is incremental and zero-copy: it
//! reads straight into one growable buffer (no per-frame allocation),
//! hands frames back as borrowed slices, and never blocks longer than
//! the underlying stream's own timeout. Pipelined frames accumulate in
//! the buffer and drain without touching the socket again — the server
//! uses exactly that to coalesce a whole burst of requests into one
//! prediction batch.
//!
//! The write side is symmetric: [`write_frames_vectored`] emits any
//! number of frames as one vectored write (length prefix and payload are
//! separate iovecs), so a pipelined reply burst costs one syscall and
//! zero payload copies.

use std::io::{self, IoSlice, Read, Write};

/// Frames larger than this are rejected before any allocation of the
/// payload — a garbage or hostile length prefix must not OOM the server.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// How many bytes one [`FrameReader::fill`] call asks the stream for.
const READ_CHUNK: usize = 16 * 1024;

/// Consumed-prefix length beyond which the reader compacts its buffer
/// (memmove) instead of letting it grow unboundedly.
const COMPACT_AT: usize = 8 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream. `clean` is false if it closed
    /// mid-frame (a truncated frame).
    Closed {
        /// True when the stream ended exactly on a frame boundary.
        clean: bool,
    },
    /// The length prefix announced a payload above the configured limit.
    TooLarge {
        /// The announced payload length.
        announced: usize,
        /// The configured maximum.
        max: usize,
    },
    /// Any other I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed { clean: true } => write!(f, "peer closed the connection"),
            FrameError::Closed { clean: false } => {
                write!(f, "peer closed the connection mid-frame (truncated frame)")
            }
            FrameError::TooLarge { announced, max } => {
                write!(f, "frame of {announced} bytes exceeds the {max}-byte limit")
            }
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// What one [`FrameReader::fill`] call did to the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill {
    /// New bytes landed in the buffer; frames may now be complete.
    Read(usize),
    /// The read timed out / would block; nothing changed.
    Idle,
}

/// Incremental frame reader: owns the receive buffer for one stream.
///
/// Frames are returned as slices borrowed from the internal buffer
/// ([`FrameReader::next_frame`]); the consumed prefix is reclaimed by
/// periodic compaction, so a long-lived connection settles into a fixed
/// allocation no matter how many frames pass through it.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes buffered but not yet returned as frames.
    fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Reclaims the consumed prefix: free when the buffer is fully
    /// drained, one memmove otherwise (only once the prefix is worth it).
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_AT {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
            self.start = 0;
        }
    }

    /// Pulls the next complete frame out of the buffer without I/O.
    /// Returns `Ok(None)` when no complete frame is buffered. The slice
    /// borrows the internal buffer — consume it before the next call.
    pub fn next_frame(&mut self, max_frame: usize) -> Result<Option<&[u8]>, FrameError> {
        if self.pending() < 4 {
            return Ok(None);
        }
        let announced = u32::from_be_bytes(
            self.buf[self.start..self.start + 4]
                .try_into()
                .expect("4-byte slice"),
        ) as usize;
        if announced > max_frame {
            return Err(FrameError::TooLarge {
                announced,
                max: max_frame,
            });
        }
        if self.pending() < 4 + announced {
            return Ok(None);
        }
        let at = self.start + 4;
        self.start = at + announced;
        Ok(Some(&self.buf[at..at + announced]))
    }

    /// Reads once from the stream into the internal buffer (directly —
    /// no bounce copy). `Idle` means the read timed out or would block;
    /// the caller decides whether to retry or act on a shutdown flag.
    pub fn fill<R: Read>(&mut self, stream: &mut R) -> Result<Fill, FrameError> {
        self.compact();
        let len = self.buf.len();
        self.buf.resize(len + READ_CHUNK, 0);
        let result = stream.read(&mut self.buf[len..]);
        match result {
            Ok(n) => {
                self.buf.truncate(len + n);
                if n == 0 {
                    Err(FrameError::Closed {
                        clean: self.pending() == 0,
                    })
                } else {
                    Ok(Fill::Read(n))
                }
            }
            Err(e) => {
                self.buf.truncate(len);
                match e.kind() {
                    io::ErrorKind::WouldBlock
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::Interrupted => Ok(Fill::Idle),
                    _ => Err(FrameError::Io(e)),
                }
            }
        }
    }

    /// Polls for the next frame as an owned buffer. Returns `Ok(None)`
    /// when no complete frame is available yet (short read or read
    /// timeout). Drains pipelined frames before touching the socket.
    pub fn poll_frame<R: Read>(
        &mut self,
        stream: &mut R,
        max_frame: usize,
    ) -> Result<Option<Vec<u8>>, FrameError> {
        if let Some(frame) = self.next_frame(max_frame)? {
            return Ok(Some(frame.to_vec()));
        }
        match self.fill(stream)? {
            Fill::Idle => Ok(None),
            Fill::Read(_) => Ok(self.next_frame(max_frame)?.map(<[u8]>::to_vec)),
        }
    }

    /// Blocking convenience: polls until a frame arrives or the stream
    /// fails. Used by clients (loadgen, tests); the server uses the
    /// [`FrameReader::fill`] / [`FrameReader::next_frame`] pair so it can
    /// interleave shutdown checks and batch pipelined frames.
    pub fn read_frame<R: Read>(
        &mut self,
        stream: &mut R,
        max_frame: usize,
    ) -> Result<Vec<u8>, FrameError> {
        loop {
            if let Some(frame) = self.poll_frame(stream, max_frame)? {
                return Ok(frame);
            }
        }
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(stream: &mut W, payload: &[u8]) -> io::Result<()> {
    write_frames_vectored(stream, &[payload])
}

/// Writes every payload as a length-prefixed frame in one vectored
/// write: prefixes and payloads become separate iovecs, so no payload
/// byte is ever copied and a pipelined burst is one syscall on any
/// stream that accepts the full iovec list at once. Partial writes are
/// resumed from the exact byte they stopped at.
pub fn write_frames_vectored<W: Write>(stream: &mut W, payloads: &[&[u8]]) -> io::Result<()> {
    let mut prefixes = Vec::with_capacity(payloads.len());
    for payload in payloads {
        let len = u32::try_from(payload.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32")
        })?;
        prefixes.push(len.to_be_bytes());
    }
    // Interleave prefix/payload spans; skip empty payloads (a zero-length
    // frame is just its prefix).
    let mut spans: Vec<&[u8]> = Vec::with_capacity(payloads.len() * 2);
    for (prefix, payload) in prefixes.iter().zip(payloads) {
        spans.push(prefix);
        if !payload.is_empty() {
            spans.push(payload);
        }
    }
    let mut iov: Vec<IoSlice<'_>> = Vec::with_capacity(spans.len());
    let mut span = 0;
    let mut offset = 0;
    while span < spans.len() {
        iov.clear();
        iov.push(IoSlice::new(&spans[span][offset..]));
        iov.extend(spans[span + 1..].iter().map(|s| IoSlice::new(s)));
        let mut n = match stream.write_vectored(&iov) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "stream accepted no bytes",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        while n > 0 {
            let remaining = spans[span].len() - offset;
            if n >= remaining {
                n -= remaining;
                span += 1;
                offset = 0;
            } else {
                offset += n;
                n = 0;
            }
        }
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_including_pipelined() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"a\":1}").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(wire);
        assert_eq!(
            reader.read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            b"{\"a\":1}"
        );
        // The second frame was already buffered; no further read needed.
        assert_eq!(
            reader.next_frame(DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"second"
        );
    }

    #[test]
    fn truncated_frame_reports_unclean_close() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello world").unwrap();
        wire.truncate(wire.len() - 3);
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(wire);
        match reader.read_frame(&mut cursor, DEFAULT_MAX_FRAME) {
            Err(FrameError::Closed { clean: false }) => {}
            other => panic!("expected unclean close, got {other:?}"),
        }
    }

    #[test]
    fn clean_eof_between_frames() {
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(Vec::new());
        match reader.read_frame(&mut cursor, DEFAULT_MAX_FRAME) {
            Err(FrameError::Closed { clean: true }) => {}
            other => panic!("expected clean close, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        // 256 MiB announced against a 1 MiB cap: must fail from the
        // header alone, with no payload bytes present.
        let wire = (256u32 << 20).to_be_bytes().to_vec();
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(wire);
        match reader.read_frame(&mut cursor, DEFAULT_MAX_FRAME) {
            Err(FrameError::TooLarge { announced, max }) => {
                assert_eq!(announced, 256 << 20);
                assert_eq!(max, DEFAULT_MAX_FRAME);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn byte_at_a_time_delivery_reassembles() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"slow").unwrap();
        let mut reader = FrameReader::new();
        let mut got = None;
        for byte in wire {
            let mut one = Cursor::new(vec![byte]);
            if let Some(frame) = reader.poll_frame(&mut one, DEFAULT_MAX_FRAME).unwrap() {
                got = Some(frame);
            }
        }
        assert_eq!(got.as_deref(), Some(b"slow".as_slice()));
    }

    #[test]
    fn vectored_write_emits_every_frame_in_order() {
        let payloads: Vec<Vec<u8>> = (0..5).map(|i| format!("frame-{i}").into_bytes()).collect();
        let spans: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let mut wire = Vec::new();
        write_frames_vectored(&mut wire, &spans).unwrap();
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(wire);
        for want in &payloads {
            assert_eq!(
                &reader.read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
                want
            );
        }
    }

    /// A writer that accepts at most 3 bytes per call, forcing the
    /// vectored path through every partial-write resume case (mid-prefix,
    /// mid-payload, across span boundaries).
    struct Trickle(Vec<u8>);

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(3);
            self.0.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_survives_partial_writes() {
        let payloads: Vec<Vec<u8>> = vec![
            b"abcdefgh".to_vec(),
            Vec::new(),
            b"0123456789abcdef".to_vec(),
        ];
        let spans: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let mut trickle = Trickle(Vec::new());
        write_frames_vectored(&mut trickle, &spans).unwrap();
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(trickle.0);
        for want in &payloads {
            assert_eq!(
                &reader.read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
                want
            );
        }
    }

    #[test]
    fn long_lived_reader_compacts_instead_of_growing() {
        let mut reader = FrameReader::new();
        let payload = vec![7u8; 1024];
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        for _ in 0..200 {
            let mut cursor = Cursor::new(wire.clone());
            let got = reader.read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(got, payload);
        }
        // 200 KiB of traffic must not leave a 200 KiB buffer behind.
        assert!(
            reader.buf.capacity() < 64 * 1024,
            "reader buffer grew to {} bytes",
            reader.buf.capacity()
        );
    }
}
