//! Dataset assembly and the normalization contract (paper Section 4.3).
//!
//! Every training row is `(fp_active, dram_active, sm_app_clock / f_max)`
//! with two targets:
//!
//! * `power_usage / TDP` — normalized power;
//! * `exec_time / exec_time(f_max)` — time relative to the default clock
//!   (Figure 8 plots exactly this normalized time).
//!
//! Training rows carry the features *measured at that row's frequency* —
//! the offline campaign has them anyway. The paper's central
//! simplification ("we consider the feature values obtained at default as
//! constant", Section 4.2 summary) applies to the **online phase**: an
//! unseen application is profiled once at the default clock and those
//! feature values stand in for every other frequency. Section 4.2.2 shows
//! the residual feature drift (mostly in `dram_active`) is small enough
//! not to hurt prediction — which holds here too, because the power
//! model's sensitivity to `dram_active` is modest.

use gpu_model::{DeviceSpec, MetricSample};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tensor::Matrix;

/// Number of model input features.
pub const NUM_FEATURES: usize = 3;

/// A normalized training dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows: `(fp_active, dram_active, f / f_max)`.
    pub x: Matrix,
    /// Normalized power targets (`P / TDP`), one per row.
    pub y_power: Vec<f64>,
    /// Normalized time targets (`T(f) / T(f_max)`), one per row.
    pub y_time: Vec<f64>,
    /// Workload name per row (for grouped diagnostics).
    pub workload: Vec<String>,
}

/// Per-workload reference point measured at the default clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefaultClockReference {
    /// Mean `fp_active` at the default clock.
    pub fp_active: f64,
    /// Mean `dram_active` at the default clock.
    pub dram_active: f64,
    /// Mean execution time at the default clock, seconds.
    pub exec_time_s: f64,
    /// Mean power at the default clock, watts.
    pub power_w: f64,
}

/// Errors during dataset assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A workload has no samples at the default clock, so it cannot be
    /// normalized.
    MissingDefaultClock {
        /// The offending workload.
        workload: String,
    },
    /// No samples at all.
    Empty,
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::MissingDefaultClock { workload } => {
                write!(f, "workload {workload} has no samples at the default clock")
            }
            DatasetError::Empty => write!(f, "no samples provided"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// Computes each workload's default-clock reference from a sample set.
pub fn default_references(
    spec: &DeviceSpec,
    samples: &[MetricSample],
) -> Result<BTreeMap<String, DefaultClockReference>, DatasetError> {
    if samples.is_empty() {
        return Err(DatasetError::Empty);
    }
    let mut acc: BTreeMap<String, (f64, f64, f64, f64, usize)> = BTreeMap::new();
    for s in samples {
        if s.sm_app_clock == spec.max_core_mhz {
            let e = acc
                .entry(s.workload.clone())
                .or_insert((0.0, 0.0, 0.0, 0.0, 0));
            e.0 += s.fp_active();
            e.1 += s.dram_active;
            e.2 += s.exec_time;
            e.3 += s.power_usage;
            e.4 += 1;
        }
    }
    let mut out = BTreeMap::new();
    for s in samples {
        if !acc.contains_key(&s.workload) {
            return Err(DatasetError::MissingDefaultClock {
                workload: s.workload.clone(),
            });
        }
    }
    for (w, (fp, dram, t, p, n)) in acc {
        let n = n as f64;
        out.insert(
            w,
            DefaultClockReference {
                fp_active: fp / n,
                dram_active: dram / n,
                exec_time_s: t / n,
                power_w: p / n,
            },
        );
    }
    Ok(out)
}

/// Which feature values enter the training rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureMode {
    /// Features measured at each row's own frequency (maximum coverage of
    /// the feature space, but mismatched with the online phase's
    /// default-clock features).
    PerSample,
    /// Each workload's default-clock features replicated across all rows
    /// (aligned with the online phase, but only one feature point per
    /// workload).
    DefaultClock,
    /// Both views of every sample (the default): per-sample rows give the
    /// network coverage, default-clock rows anchor the online regime.
    Both,
}

impl Dataset {
    /// Builds the normalized dataset with the default [`FeatureMode::Both`].
    pub fn from_samples(spec: &DeviceSpec, samples: &[MetricSample]) -> Result<Self, DatasetError> {
        Self::from_samples_with(spec, samples, FeatureMode::Both)
    }

    /// Builds the normalized dataset with an explicit feature mode.
    pub fn from_samples_with(
        spec: &DeviceSpec,
        samples: &[MetricSample],
        mode: FeatureMode,
    ) -> Result<Self, DatasetError> {
        let refs = default_references(spec, samples)?;
        let per_sample = mode != FeatureMode::DefaultClock;
        let default_clock = mode != FeatureMode::PerSample;
        let n = samples.len() * (per_sample as usize + default_clock as usize);
        let mut x = Matrix::zeros(n, NUM_FEATURES);
        let mut y_power = Vec::with_capacity(n);
        let mut y_time = Vec::with_capacity(n);
        let mut workload = Vec::with_capacity(n);
        let mut i = 0usize;
        for s in samples {
            let r = &refs[&s.workload];
            let mut push = |fp: f64, dram: f64| {
                let row = x.row_mut(i);
                row[0] = fp;
                row[1] = dram;
                row[2] = s.sm_app_clock / spec.max_core_mhz;
                y_power.push(s.power_usage / spec.tdp_w);
                y_time.push(s.exec_time / r.exec_time_s);
                workload.push(s.workload.clone());
                i += 1;
            };
            if per_sample {
                push(s.fp_active(), s.dram_active);
            }
            if default_clock {
                push(r.fp_active, r.dram_active);
            }
        }
        Ok(Self {
            x,
            y_power,
            y_time,
            workload,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// True when the dataset holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds the model input row for given features and clock.
    pub fn feature_row(fp_active: f64, dram_active: f64, f_norm: f64) -> Vec<f64> {
        vec![fp_active, dram_active, f_norm]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::{NoiseModel, SignatureBuilder, WorkloadSignature};

    fn sig(name: &str) -> WorkloadSignature {
        SignatureBuilder::new(name)
            .flops(1.0e13)
            .bytes(2.0e11)
            .build()
    }

    fn samples_for(spec: &DeviceSpec, names: &[&str], freqs: &[f64]) -> Vec<MetricSample> {
        let nm = NoiseModel::none();
        let mut out = Vec::new();
        for &n in names {
            let s = sig(n);
            for &f in freqs {
                for run in 0..2 {
                    out.push(gpu_model::sample::measure(spec, &s, f, run, &nm));
                }
            }
        }
        out
    }

    #[test]
    fn builds_expected_shape() {
        let spec = DeviceSpec::ga100();
        let samples = samples_for(&spec, &["a", "b"], &[510.0, 1005.0, 1410.0]);
        let ds = Dataset::from_samples(&spec, &samples).unwrap();
        // FeatureMode::Both emits two rows per sample.
        assert_eq!(ds.len(), 24);
        assert_eq!(ds.x.cols(), NUM_FEATURES);
        assert_eq!(ds.y_power.len(), 24);
        assert_eq!(ds.y_time.len(), 24);
    }

    #[test]
    fn normalized_time_is_one_at_max_clock() {
        let spec = DeviceSpec::ga100();
        let samples = samples_for(&spec, &["a"], &[705.0, 1410.0]);
        let ds = Dataset::from_samples(&spec, &samples).unwrap();
        for i in 0..ds.len() {
            if (ds.x[(i, 2)] - 1.0).abs() < 1e-12 {
                assert!((ds.y_time[i] - 1.0).abs() < 1e-9);
            } else {
                assert!(ds.y_time[i] > 1.0, "slower at lower clocks");
            }
        }
    }

    #[test]
    fn power_targets_are_tdp_fractions() {
        let spec = DeviceSpec::ga100();
        let samples = samples_for(&spec, &["a"], &[510.0, 1410.0]);
        let ds = Dataset::from_samples(&spec, &samples).unwrap();
        assert!(ds.y_power.iter().all(|&p| (0.0..=1.05).contains(&p)));
    }

    #[test]
    fn features_follow_each_sample() {
        // Training rows carry per-frequency measured features: fp_active is
        // nearly invariant across DVFS while dram_active drifts (paper
        // Figure 4).
        let spec = DeviceSpec::ga100();
        let samples = samples_for(&spec, &["a"], &[510.0, 900.0, 1410.0]);
        let ds = Dataset::from_samples_with(&spec, &samples, FeatureMode::PerSample).unwrap();
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(ds.x[(i, 0)], s.fp_active());
            assert_eq!(ds.x[(i, 1)], s.dram_active);
        }
    }

    #[test]
    fn feature_modes_have_expected_row_counts() {
        let spec = DeviceSpec::ga100();
        let samples = samples_for(&spec, &["a"], &[510.0, 1410.0]);
        let per = Dataset::from_samples_with(&spec, &samples, FeatureMode::PerSample).unwrap();
        let def = Dataset::from_samples_with(&spec, &samples, FeatureMode::DefaultClock).unwrap();
        let both = Dataset::from_samples_with(&spec, &samples, FeatureMode::Both).unwrap();
        assert_eq!(per.len(), samples.len());
        assert_eq!(def.len(), samples.len());
        assert_eq!(both.len(), 2 * samples.len());
        // DefaultClock rows replicate the reference features everywhere.
        for i in 1..def.len() {
            assert_eq!(def.x[(i, 0)], def.x[(0, 0)]);
            assert_eq!(def.x[(i, 1)], def.x[(0, 1)]);
        }
    }

    #[test]
    fn missing_default_clock_is_error() {
        let spec = DeviceSpec::ga100();
        let samples = samples_for(&spec, &["a"], &[510.0, 705.0]);
        let err = Dataset::from_samples(&spec, &samples).unwrap_err();
        assert_eq!(
            err,
            DatasetError::MissingDefaultClock {
                workload: "a".into()
            }
        );
    }

    #[test]
    fn empty_input_is_error() {
        let spec = DeviceSpec::ga100();
        assert_eq!(
            Dataset::from_samples(&spec, &[]).unwrap_err(),
            DatasetError::Empty
        );
    }

    #[test]
    fn references_average_over_runs() {
        let spec = DeviceSpec::ga100();
        let samples = samples_for(&spec, &["a"], &[1410.0]);
        let refs = default_references(&spec, &samples).unwrap();
        let r = &refs["a"];
        let mean_p: f64 = samples.iter().map(|s| s.power_usage).sum::<f64>() / samples.len() as f64;
        assert!((r.power_w - mean_p).abs() < 1e-9);
    }
}
