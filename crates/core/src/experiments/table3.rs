//! Table 3: power and performance model accuracy for each application on
//! GA100 and GV100 (the cross-architecture portability study).

use super::Lab;
use crate::evaluation::{accuracy_row, AccuracyRow};
use serde::{Deserialize, Serialize};

/// The Table 3 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Report {
    /// Per-application accuracies on the training architecture (GA100).
    pub ga100: Vec<AccuracyRow>,
    /// Per-application accuracies on the transfer architecture (GV100) —
    /// same models, never trained on Volta data.
    pub gv100: Vec<AccuracyRow>,
}

/// Computes both halves of Table 3.
pub fn run(lab: &Lab) -> Table3Report {
    let rows =
        |measured: &std::collections::BTreeMap<String, crate::predictor::PredictedProfile>,
         predicted: &std::collections::BTreeMap<String, crate::predictor::PredictedProfile>|
         -> Vec<AccuracyRow> {
            lab.app_names()
                .into_iter()
                .map(|name| accuracy_row(&measured[&name], &predicted[&name]))
                .collect()
        };
    Table3Report {
        ga100: rows(&lab.measured_ga100, &lab.predicted_ga100),
        gv100: rows(&lab.measured_gv100, &lab.predicted_gv100),
    }
}

impl Table3Report {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::from("== Table 3: model accuracy per application ==\n");
        out.push_str(&format!(
            "{:<8} {:<12} {:>10} {:>13}\n",
            "GPU", "Application", "Power", "Performance"
        ));
        for (gpu, rows) in [("GA100", &self.ga100), ("GV100", &self.gv100)] {
            for r in rows {
                out.push_str(&format!(
                    "{:<8} {:<12} {:>9.1}% {:>12.1}%\n",
                    gpu, r.application, r.power_accuracy, r.time_accuracy
                ));
            }
        }
        out
    }

    /// Minimum accuracy across both devices and both models.
    pub fn min_accuracy(&self) -> f64 {
        self.ga100
            .iter()
            .chain(&self.gv100)
            .flat_map(|r| [r.power_accuracy, r.time_accuracy])
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn accuracies_land_in_the_paper_band() {
        // Paper: 88-98% across applications, models, and devices.
        let r = run(testlab::shared());
        assert!(
            r.min_accuracy() > 80.0,
            "minimum accuracy {:.1}%",
            r.min_accuracy()
        );
        let max = r
            .ga100
            .iter()
            .chain(&r.gv100)
            .flat_map(|x| [x.power_accuracy, x.time_accuracy])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max <= 100.0);
        assert!(max > 93.0, "best accuracy only {max:.1}%");
    }

    #[test]
    fn models_port_to_volta() {
        // The headline portability claim: >93% power accuracy on GV100
        // without any Volta training data. Allow a small band below.
        let r = run(testlab::shared());
        for row in &r.gv100 {
            assert!(
                row.power_accuracy > 88.0,
                "{} on GV100: {:.1}%",
                row.application,
                row.power_accuracy
            );
        }
    }

    #[test]
    fn transfer_costs_some_power_accuracy_on_average() {
        let r = run(testlab::shared());
        let mean = |rows: &[crate::evaluation::AccuracyRow]| {
            rows.iter().map(|x| x.power_accuracy).sum::<f64>() / rows.len() as f64
        };
        // GA100 (same-device) should be at least roughly as good as the
        // transfer; a small inversion is tolerated (paper: 96.5 vs 95.1
        // style gaps, occasionally reversed per app).
        assert!(mean(&r.ga100) > mean(&r.gv100) - 2.0);
    }

    #[test]
    fn six_rows_per_device() {
        let r = run(testlab::shared());
        assert_eq!(r.ga100.len(), 6);
        assert_eq!(r.gv100.len(), 6);
    }
}
