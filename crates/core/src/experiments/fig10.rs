//! Figure 10: percentage change in energy (upper) and execution time
//! (lower) under P-ED²P and M-ED²P for each application on GA100.

use super::Lab;
use crate::evaluation::{four_way_selection, trade_off, TradeOff};
use serde::{Deserialize, Serialize};

/// One application's ED²P outcomes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ed2pOutcome {
    /// Application name.
    pub application: String,
    /// Measured-data ED²P outcome.
    pub measured: TradeOff,
    /// Predicted-data ED²P outcome (evaluated against measured data).
    pub predicted: TradeOff,
}

/// The Figure 10 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Report {
    /// One outcome pair per application.
    pub outcomes: Vec<Ed2pOutcome>,
}

/// Builds the ED²P energy/time change bars.
pub fn run(lab: &Lab) -> Fig10Report {
    let outcomes = lab
        .app_names()
        .into_iter()
        .map(|name| {
            let m = &lab.measured_ga100[&name];
            let p = &lab.predicted_ga100[&name];
            let sel = four_way_selection(m, p);
            Ed2pOutcome {
                application: name,
                measured: trade_off(m, sel.m_ed2p.index),
                predicted: trade_off(m, sel.p_ed2p.index),
            }
        })
        .collect();
    Fig10Report { outcomes }
}

impl Fig10Report {
    /// Renders the two bar groups.
    pub fn render(&self) -> String {
        let mut out = String::from("== Figure 10: ED2P energy/time change vs f_max (GA100) ==\n");
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}\n",
            "app", "M-E(%)", "P-E(%)", "M-T(%)", "P-T(%)"
        ));
        for o in &self.outcomes {
            out.push_str(&format!(
                "{:<10} {:>12.1} {:>12.1} {:>12.1} {:>12.1}\n",
                o.application,
                o.measured.energy_saving_pct,
                o.predicted.energy_saving_pct,
                o.measured.time_change_pct,
                o.predicted.time_change_pct
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn measured_ed2p_saves_energy_with_small_time_cost() {
        let r = run(testlab::shared());
        let avg_energy: f64 = r
            .outcomes
            .iter()
            .map(|o| o.measured.energy_saving_pct)
            .sum::<f64>()
            / r.outcomes.len() as f64;
        let avg_time: f64 = r
            .outcomes
            .iter()
            .map(|o| o.measured.time_change_pct)
            .sum::<f64>()
            / r.outcomes.len() as f64;
        // Paper: average 28.2% energy saving at -1.8% time. Shape target:
        // double-digit savings, low single-digit average time cost.
        assert!(avg_energy > 10.0, "avg M-ED2P saving {avg_energy:.1}%");
        assert!(avg_time > -6.0, "avg M-ED2P time change {avg_time:.1}%");
    }

    #[test]
    fn predicted_tracks_measured_direction() {
        // Figure 10's claim: predicted changes closely match measured ones.
        let r = run(testlab::shared());
        for o in &r.outcomes {
            let gap = (o.measured.energy_saving_pct - o.predicted.energy_saving_pct).abs();
            assert!(gap < 25.0, "{}: energy gap {gap:.1} pts", o.application);
        }
    }

    #[test]
    fn no_selection_loses_energy_catastrophically() {
        let r = run(testlab::shared());
        for o in &r.outcomes {
            assert!(o.predicted.energy_saving_pct > -5.0, "{}", o.application);
            assert!(o.measured.energy_saving_pct >= 0.0, "{}", o.application);
        }
    }
}
