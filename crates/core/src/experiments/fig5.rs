//! Figure 5: impact of input size on fp_active and dram_active at the
//! maximum frequency.
//!
//! Unlike the other experiments this one actually re-runs the instrumented
//! CPU kernels at several problem scales — the size invariance falls out
//! of the physics (activity ratios are intensive quantities), and this
//! experiment verifies it end to end through the measurement path.

use super::Lab;
use gpu_model::NoiseModel;
use kernels::micro::{Dgemm, Stream};
use kernels::Kernel;
use serde::{Deserialize, Serialize};
use telemetry::GpuBackend;

/// Activities of one benchmark across input scales at f_max.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizeSweep {
    /// Benchmark name.
    pub name: String,
    /// Input-scale factors swept.
    pub scales: Vec<f64>,
    /// Measured fp_active per scale.
    pub fp_active: Vec<f64>,
    /// Measured dram_active per scale.
    pub dram_active: Vec<f64>,
}

/// The Figure 5 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Report {
    /// DGEMM and STREAM sweeps.
    pub sweeps: Vec<SizeSweep>,
}

/// Runs both micro-benchmarks at several input sizes and measures their
/// activities at the default clock.
pub fn run(lab: &Lab) -> Fig5Report {
    let spec = lab.ga100.spec();
    let scales = vec![0.25, 0.5, 1.0, 2.0, 4.0];
    let noise = NoiseModel::default_bench();
    // GPU-scale DGEMM edge: at realistic sizes the arithmetic intensity is
    // deep in the compute-bound regime at every swept scale.
    let kernels: Vec<Box<dyn Kernel>> =
        vec![Box::new(Dgemm { n: 768 }), Box::new(Stream::default())];
    let sweeps = kernels
        .iter()
        .map(|k| {
            let mut fp = Vec::with_capacity(scales.len());
            let mut dram = Vec::with_capacity(scales.len());
            for &scale in &scales {
                let sig = k.signature_for(spec, scale);
                let m = gpu_model::sample::measure(spec, &sig, spec.max_core_mhz, 0, &noise);
                fp.push(m.fp_active());
                dram.push(m.dram_active);
            }
            SizeSweep {
                name: k.name().to_string(),
                scales: scales.clone(),
                fp_active: fp,
                dram_active: dram,
            }
        })
        .collect();
    Fig5Report { sweeps }
}

impl Fig5Report {
    /// Renders the sweeps.
    pub fn render(&self) -> String {
        let mut out = String::from("== Figure 5: input-size impact on activities (at f_max) ==\n");
        for s in &self.sweeps {
            out.push_str(&format!("{}:\n", s.name));
            for i in 0..s.scales.len() {
                out.push_str(&format!(
                    "  scale {:>5.2}  fp {:.3}  dram {:.3}\n",
                    s.scales[i], s.fp_active[i], s.dram_active[i]
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    fn rel_swing(xs: &[f64]) -> f64 {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if hi <= 0.0 {
            return 0.0;
        }
        (hi - lo) / hi
    }

    #[test]
    fn activities_are_input_size_invariant() {
        let r = run(testlab::shared());
        for s in &r.sweeps {
            assert!(
                rel_swing(&s.fp_active) < 0.15 || s.fp_active.iter().all(|&v| v < 0.05),
                "{}: fp varies {:.3}",
                s.name,
                rel_swing(&s.fp_active)
            );
            // Invariance on the paper's 0..1 activity axis: the absolute
            // swing stays small even where the relative swing is larger
            // (DGEMM's dram_active is small and falls slowly with size;
            // the paper notes this has "little effect" on prediction).
            let lo = s.dram_active.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = s
                .dram_active
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                hi - lo < 0.12 || (hi - lo) / hi < 0.20,
                "{}: dram varies {lo:.3}..{hi:.3}",
                s.name
            );
        }
    }

    #[test]
    fn sweep_covers_16x_size_range() {
        let r = run(testlab::shared());
        for s in &r.sweeps {
            assert_eq!(s.scales.len(), 5);
            assert!(s.scales.last().unwrap() / s.scales[0] >= 16.0);
        }
    }

    #[test]
    fn dgemm_and_stream_keep_their_regimes_at_all_sizes() {
        let r = run(testlab::shared());
        let dgemm = &r.sweeps[0];
        let stream = &r.sweeps[1];
        assert!(dgemm.fp_active.iter().all(|&v| v > 0.5));
        assert!(stream.dram_active.iter().all(|&v| v > 0.5));
        assert!(stream.fp_active.iter().all(|&v| v < 0.1));
    }
}
