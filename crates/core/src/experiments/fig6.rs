//! Figure 6: training and validation loss curves of the two models
//! (power: 100 epochs, performance: 25 epochs).

use super::Lab;
use serde::{Deserialize, Serialize};

/// The Figure 6 report: both models' loss histories.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Report {
    /// Power-model training loss per epoch (panel a).
    pub power_train: Vec<f64>,
    /// Power-model validation loss per epoch.
    pub power_val: Vec<f64>,
    /// Time-model training loss per epoch (panel b).
    pub time_train: Vec<f64>,
    /// Time-model validation loss per epoch.
    pub time_val: Vec<f64>,
    /// Wall-clock seconds to train the power model (paper: ~6.5 s).
    pub power_train_seconds: f64,
    /// Wall-clock seconds to train the time model (paper: ~2.6 s).
    pub time_train_seconds: f64,
}

/// Extracts the loss histories from the lab's trained pipeline.
pub fn run(lab: &Lab) -> Fig6Report {
    let m = &lab.pipeline.models;
    Fig6Report {
        power_train: m.power_history.train_loss.clone(),
        power_val: m.power_history.val_loss.clone(),
        time_train: m.time_history.train_loss.clone(),
        time_val: m.time_history.val_loss.clone(),
        power_train_seconds: m.power_history.train_seconds,
        time_train_seconds: m.time_history.train_seconds,
    }
}

impl Fig6Report {
    /// Renders the two loss curves.
    pub fn render(&self) -> String {
        let mut out = String::from("== Figure 6: model training losses ==\n");
        out.push_str(&format!(
            "(a) power model: {} epochs, {:.1}s wall\n",
            self.power_train.len(),
            self.power_train_seconds
        ));
        render_curve(&mut out, &self.power_train, &self.power_val);
        out.push_str(&format!(
            "(b) performance model: {} epochs, {:.1}s wall\n",
            self.time_train.len(),
            self.time_train_seconds
        ));
        render_curve(&mut out, &self.time_train, &self.time_val);
        out
    }
}

fn render_curve(out: &mut String, train: &[f64], val: &[f64]) {
    let step = (train.len() / 10).max(1);
    for i in (0..train.len()).step_by(step) {
        out.push_str(&format!(
            "  epoch {:>3}  train {:.5}  val {:.5}\n",
            i + 1,
            train[i],
            val.get(i).copied().unwrap_or(f64::NAN)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn epoch_counts_match_paper() {
        let r = run(testlab::shared());
        assert_eq!(r.power_train.len(), 100);
        assert_eq!(r.time_train.len(), 25);
        assert_eq!(r.power_val.len(), 100);
    }

    #[test]
    fn losses_converge() {
        let r = run(testlab::shared());
        assert!(r.power_train.last().unwrap() < &(r.power_train[0] / 5.0));
        assert!(r.time_train.last().unwrap() < &(r.time_train[0] / 2.0));
    }

    #[test]
    fn validation_tracks_training_without_blowup() {
        let r = run(testlab::shared());
        let last_train = *r.power_train.last().unwrap();
        let last_val = *r.power_val.last().unwrap();
        // Validation close to training at convergence (Figure 6a shows the
        // two curves coinciding).
        assert!(
            last_val < 6.0 * last_train + 1e-4,
            "val {last_val} vs train {last_train}"
        );
    }

    #[test]
    fn training_is_fast_like_the_paper() {
        // Paper reports 6.5 s / 2.6 s; the simulator-scale dataset should
        // train in the same order of magnitude.
        let r = run(testlab::shared());
        // Debug-build tests run the un-optimized trainer; keep the bounds
        // loose and rely on the relative ordering (100 epochs > 25 epochs,
        // matching the paper's 6.5 s vs 2.6 s split).
        assert!(r.power_train_seconds < 1200.0);
        assert!(r.time_train_seconds < 600.0);
        assert!(r.power_train_seconds > r.time_train_seconds);
    }
}
