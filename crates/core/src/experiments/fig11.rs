//! Figure 11: power-prediction accuracy of the DNN vs the multi-learner
//! baselines (RFR, XGBR, SVR, MLR) on the real applications.

use super::Lab;
use baselines::{GradientBoosting, LinearRegression, LinearSvr, RandomForest, Regressor};
use nn::metrics;
use serde::{Deserialize, Serialize};
use telemetry::GpuBackend;
use tensor::Matrix;

/// One learner's per-application power accuracy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearnerAccuracy {
    /// Learner name ("DNN", "RFR", "XGBR", "SVR", "MLR").
    pub learner: String,
    /// Accuracy per application, in the paper's application order.
    pub per_app_accuracy_pct: Vec<f64>,
    /// Mean accuracy across applications.
    pub mean_accuracy_pct: f64,
}

/// The Figure 11 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Report {
    /// Application order used in the per-app columns.
    pub applications: Vec<String>,
    /// DNN first, then the four baselines.
    pub learners: Vec<LearnerAccuracy>,
}

/// Trains the baselines on the same dataset as the DNN and scores power
/// accuracy on the real applications.
pub fn run(lab: &Lab) -> Fig11Report {
    let spec = lab.ga100.spec();
    let ds = &lab.pipeline.dataset;
    let apps = lab.app_names();

    // The DNN row comes straight from the lab's predicted profiles.
    let mut learners = vec![dnn_row(lab, &apps)];

    let mut baselines: Vec<Box<dyn Regressor>> = vec![
        Box::new(RandomForest::new(60, 10)),
        Box::new(GradientBoosting::new(120, 4, 0.15)),
        Box::new(LinearSvr::new()),
        Box::new(LinearRegression::new()),
    ];
    for model in &mut baselines {
        model.fit(&ds.x, &ds.y_power);
        let mut per_app = Vec::with_capacity(apps.len());
        for name in &apps {
            let measured = &lab.measured_ga100[name];
            // Same online regime as the DNN: features from the default
            // clock, swept over frequency.
            let (fp, dram) = app_reference_features(lab, name);
            let rows: Vec<Vec<f64>> = measured
                .frequencies
                .iter()
                .map(|&f| vec![fp, dram, f / spec.max_core_mhz])
                .collect();
            let x = Matrix::from_rows(&rows).expect("rectangular features");
            let pred_w: Vec<f64> = model
                .predict(&x)
                .into_iter()
                .map(|frac| frac * spec.tdp_w)
                .collect();
            per_app.push(metrics::accuracy_from_mape(&pred_w, &measured.power_w));
        }
        let mean = per_app.iter().sum::<f64>() / per_app.len() as f64;
        learners.push(LearnerAccuracy {
            learner: model.name().to_string(),
            per_app_accuracy_pct: per_app,
            mean_accuracy_pct: mean,
        });
    }
    Fig11Report {
        applications: apps,
        learners,
    }
}

fn dnn_row(lab: &Lab, apps: &[String]) -> LearnerAccuracy {
    let per_app: Vec<f64> = apps
        .iter()
        .map(|name| {
            metrics::accuracy_from_mape(
                &lab.predicted_ga100[name].power_w,
                &lab.measured_ga100[name].power_w,
            )
        })
        .collect();
    let mean = per_app.iter().sum::<f64>() / per_app.len() as f64;
    LearnerAccuracy {
        learner: "DNN".to_string(),
        per_app_accuracy_pct: per_app,
        mean_accuracy_pct: mean,
    }
}

/// The application's default-clock features as the online phase sees them.
fn app_reference_features(lab: &Lab, name: &str) -> (f64, f64) {
    let app = lab
        .apps
        .iter()
        .find(|a| a.name == name)
        .expect("app exists in lab");
    app.activities(lab.ga100.spec(), lab.ga100.spec().max_core_mhz)
}

impl Fig11Report {
    /// Renders the accuracy comparison.
    pub fn render(&self) -> String {
        let mut out =
            String::from("== Figure 11: power accuracy across ML algorithms (GA100) ==\n");
        out.push_str(&format!("{:<8}", "learner"));
        for a in &self.applications {
            out.push_str(&format!(" {a:>9}"));
        }
        out.push_str("      mean\n");
        for l in &self.learners {
            out.push_str(&format!("{:<8}", l.learner));
            for v in &l.per_app_accuracy_pct {
                out.push_str(&format!(" {v:>9.1}"));
            }
            out.push_str(&format!(" {:>9.1}\n", l.mean_accuracy_pct));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn dnn_beats_every_baseline_on_average() {
        let r = run(testlab::shared());
        let dnn = r.learners[0].mean_accuracy_pct;
        assert_eq!(r.learners[0].learner, "DNN");
        for l in &r.learners[1..] {
            assert!(
                dnn > l.mean_accuracy_pct,
                "DNN {dnn:.1}% should beat {} {:.1}%",
                l.learner,
                l.mean_accuracy_pct
            );
        }
    }

    #[test]
    fn all_five_learners_present() {
        let r = run(testlab::shared());
        let names: Vec<&str> = r.learners.iter().map(|l| l.learner.as_str()).collect();
        assert_eq!(names, ["DNN", "RFR", "XGBR", "SVR", "MLR"]);
    }

    #[test]
    fn linear_models_trail_tree_ensembles() {
        // The paper's Figure 11 shows much lower accuracy for the simple
        // learners; at minimum the linear ones must not win.
        let r = run(testlab::shared());
        let acc = |name: &str| {
            r.learners
                .iter()
                .find(|l| l.learner == name)
                .unwrap()
                .mean_accuracy_pct
        };
        assert!(acc("MLR") < acc("DNN"));
        assert!(acc("SVR") < acc("DNN"));
    }

    #[test]
    fn accuracies_are_percentages() {
        let r = run(testlab::shared());
        for l in &r.learners {
            for &v in &l.per_app_accuracy_pct {
                assert!((0.0..=100.0).contains(&v), "{}: {v}", l.learner);
            }
        }
    }
}
