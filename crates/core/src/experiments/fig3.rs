//! Figure 3: mutual-information dependency of the ten candidate features
//! on the two predictands (power, execution time).

use super::Lab;
use featsel::ksg::KsgOptions;
use featsel::ranking::{rank_features, top_n, FeatureScore};
use gpu_model::MetricSample;
use serde::{Deserialize, Serialize};

/// The Figure 3 report: two ranked panels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Report {
    /// MI of each feature against `power_usage` (panel a), descending.
    pub power_scores: Vec<FeatureScore>,
    /// MI of each feature against `exec_time` (normalized), descending.
    pub time_scores: Vec<FeatureScore>,
    /// The three features selected by the paper's procedure.
    pub selected: Vec<String>,
}

/// Runs the MI characterization on the DGEMM + STREAM campaign samples
/// (the paper uses exactly these two micro-benchmarks for Figure 3).
pub fn run(lab: &Lab) -> Fig3Report {
    let samples: Vec<&MetricSample> = lab
        .pipeline
        .samples
        .iter()
        .filter(|s| s.workload == "DGEMM" || s.workload == "STREAM")
        .collect();
    assert!(
        !samples.is_empty(),
        "campaign must include DGEMM and STREAM"
    );

    // Columns for the 10 candidate features; fp64+fp32 are merged into the
    // paper's combined fp_active (it plots "fp_active" as one bar).
    let mut names: Vec<&str> = vec!["fp_active"];
    let mut cols: Vec<Vec<f64>> = vec![samples.iter().map(|s| s.fp_active()).collect()];
    for (i, name) in MetricSample::feature_names().iter().enumerate() {
        if *name == "fp64_active" || *name == "fp32_active" {
            continue;
        }
        names.push(name);
        cols.push(samples.iter().map(|s| s.feature_vector()[i]).collect());
    }

    let power: Vec<f64> = samples.iter().map(|s| s.power_usage).collect();
    // Time is compared per normalized target (absolute durations differ
    // across the two benchmarks by construction).
    let tmax_dgemm = max_freq_time(&samples, "DGEMM");
    let tmax_stream = max_freq_time(&samples, "STREAM");
    let time: Vec<f64> = samples
        .iter()
        .map(|s| {
            let t_ref = if s.workload == "DGEMM" {
                tmax_dgemm
            } else {
                tmax_stream
            };
            s.exec_time / t_ref
        })
        .collect();

    let opts = KsgOptions::default();
    let power_scores = rank_features(&names, &cols, &power, opts);
    let time_scores = rank_features(&names, &cols, &time, opts);

    // Paper procedure: union of top-3 per predictand collapses to the same
    // trio; report the power panel's top three.
    let selected = top_n(&power_scores, 3)
        .iter()
        .map(|s| s.to_string())
        .collect();
    Fig3Report {
        power_scores,
        time_scores,
        selected,
    }
}

fn max_freq_time(samples: &[&MetricSample], workload: &str) -> f64 {
    let maxf = samples
        .iter()
        .filter(|s| s.workload == workload)
        .map(|s| s.sm_app_clock)
        .fold(f64::NEG_INFINITY, f64::max);
    let (sum, n) = samples
        .iter()
        .filter(|s| s.workload == workload && s.sm_app_clock == maxf)
        .fold((0.0, 0usize), |(acc, k), s| (acc + s.exec_time, k + 1));
    sum / n as f64
}

impl Fig3Report {
    /// Renders the two MI panels.
    pub fn render(&self) -> String {
        let mut out = String::from("== Figure 3: feature dependency (KSG mutual information) ==\n");
        for (panel, scores) in [
            ("power_usage", &self.power_scores),
            ("execution_time", &self.time_scores),
        ] {
            out.push_str(&format!("-- MI vs {panel} --\n"));
            for s in scores {
                let bar = "#".repeat((s.mi * 20.0).min(60.0) as usize);
                out.push_str(&format!("{:<18} {:>6.3}  {bar}\n", s.name, s.mi));
            }
        }
        out.push_str(&format!(
            "selected features: {}\n",
            self.selected.join(", ")
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn top_three_match_the_paper() {
        let r = run(testlab::shared());
        let mut sel = r.selected.clone();
        sel.sort();
        assert_eq!(sel, vec!["dram_active", "fp_active", "sm_app_clock"]);
    }

    #[test]
    fn weak_features_rank_below_selected() {
        let r = run(testlab::shared());
        let mi_of = |name: &str, scores: &[FeatureScore]| -> f64 {
            scores
                .iter()
                .find(|s| s.name == name)
                .expect("feature present")
                .mi
        };
        for scores in [&r.power_scores, &r.time_scores] {
            let weakest_selected = r
                .selected
                .iter()
                .map(|n| mi_of(n, scores))
                .fold(f64::INFINITY, f64::min);
            for weak in ["gpu_utilization", "pcie_tx_bytes", "pcie_rx_bytes"] {
                assert!(
                    mi_of(weak, scores) < weakest_selected,
                    "{weak} should rank below the selected trio"
                );
            }
        }
    }

    #[test]
    fn scores_cover_ten_candidates() {
        let r = run(testlab::shared());
        // fp64+fp32 merged into fp_active: 9 bars, matching the paper plot.
        assert_eq!(r.power_scores.len(), 9);
        assert_eq!(r.time_scores.len(), 9);
    }

    #[test]
    fn render_lists_selection() {
        let r = run(testlab::shared());
        assert!(r.render().contains("selected features"));
    }
}
