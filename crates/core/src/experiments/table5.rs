//! Table 5: change in energy and execution time for each application under
//! the four selectors, on GA100, with the column-wise average row.

use super::Lab;
use crate::evaluation::{average_trade_offs, four_way_selection, trade_off_row, TradeOffRow};
use serde::{Deserialize, Serialize};

/// The Table 5 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Report {
    /// One row per application.
    pub rows: Vec<TradeOffRow>,
    /// Column-wise average.
    pub average: TradeOffRow,
}

/// Builds the trade-off table.
pub fn run(lab: &Lab) -> Table5Report {
    let rows: Vec<TradeOffRow> = lab
        .app_names()
        .into_iter()
        .map(|name| {
            let m = &lab.measured_ga100[&name];
            let sel = four_way_selection(m, &lab.predicted_ga100[&name]);
            trade_off_row(m, &sel)
        })
        .collect();
    let average = average_trade_offs(&rows);
    Table5Report { rows, average }
}

impl Table5Report {
    /// Renders the table in the paper's layout (energy block, time block).
    pub fn render(&self) -> String {
        let mut out = String::from("== Table 5: energy / time change (%) on GA100 ==\n");
        out.push_str(&format!(
            "{:<10} | {:>7} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} {:>7}\n",
            "", "M-ED2P", "P-ED2P", "M-EDP", "P-EDP", "M-ED2P", "P-ED2P", "M-EDP", "P-EDP"
        ));
        out.push_str(&format!(
            "{:<10} | {:^31} | {:^31}\n",
            "app", "Energy (%)", "Time (%)"
        ));
        for r in self.rows.iter().chain(std::iter::once(&self.average)) {
            out.push_str(&format!(
                "{:<10} | {:>7.1} {:>7.1} {:>7.1} {:>7.1} | {:>7.1} {:>7.1} {:>7.1} {:>7.1}\n",
                r.application,
                r.m_ed2p.energy_saving_pct,
                r.p_ed2p.energy_saving_pct,
                r.m_edp.energy_saving_pct,
                r.p_edp.energy_saving_pct,
                r.m_ed2p.time_change_pct,
                r.p_ed2p.time_change_pct,
                r.m_edp.time_change_pct,
                r.p_edp.time_change_pct
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn measured_ed2p_average_matches_paper_shape() {
        // Paper: average M-ED2P = +28.2% energy at -1.8% time. Shape:
        // substantial average savings at a small average time cost.
        let r = run(testlab::shared());
        assert!(
            r.average.m_ed2p.energy_saving_pct > 10.0,
            "avg M-ED2P energy {:.1}%",
            r.average.m_ed2p.energy_saving_pct
        );
        assert!(
            r.average.m_ed2p.time_change_pct > -6.0,
            "avg M-ED2P time {:.1}%",
            r.average.m_ed2p.time_change_pct
        );
    }

    #[test]
    fn edp_saves_at_least_as_much_as_ed2p_at_higher_time_cost() {
        // Paper: EDP picks lower frequencies than ED2P -> more savings,
        // more performance loss (on measured data, on average).
        let r = run(testlab::shared());
        assert!(r.average.m_edp.energy_saving_pct >= r.average.m_ed2p.energy_saving_pct - 1.0);
        assert!(r.average.m_edp.time_change_pct <= r.average.m_ed2p.time_change_pct + 1.0);
    }

    #[test]
    fn max_saving_reaches_paper_headline_neighbourhood() {
        // Paper headline: >27% savings possible. Require >20% for at least
        // one application under a measured selector.
        let r = run(testlab::shared());
        let best = r
            .rows
            .iter()
            .flat_map(|x| [x.m_edp.energy_saving_pct, x.m_ed2p.energy_saving_pct])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best > 20.0, "best measured saving {best:.1}%");
    }

    #[test]
    fn average_row_is_labelled() {
        let r = run(testlab::shared());
        assert_eq!(r.average.application, "Average");
        assert_eq!(r.rows.len(), 6);
    }
}
