//! Figure 7: predicted vs measured power for the six real applications
//! across the 61 GA100 DVFS configurations.

use super::Lab;
use nn::metrics;
use serde::{Deserialize, Serialize};

/// One application's power panel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerPanel {
    /// Application name.
    pub application: String,
    /// Frequencies in MHz.
    pub frequency_mhz: Vec<f64>,
    /// Measured power in watts.
    pub measured_w: Vec<f64>,
    /// Predicted power in watts.
    pub predicted_w: Vec<f64>,
    /// Accuracy (100 − MAPE) in percent.
    pub accuracy_pct: f64,
}

/// The Figure 7 report: six panels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Report {
    /// One panel per application, in the paper's order.
    pub panels: Vec<PowerPanel>,
}

/// Builds the six measured-vs-predicted power panels.
pub fn run(lab: &Lab) -> Fig7Report {
    let panels = lab
        .app_names()
        .into_iter()
        .map(|name| {
            let m = &lab.measured_ga100[&name];
            let p = &lab.predicted_ga100[&name];
            PowerPanel {
                application: name,
                frequency_mhz: m.frequencies.clone(),
                accuracy_pct: metrics::accuracy_from_mape(&p.power_w, &m.power_w),
                measured_w: m.power_w.clone(),
                predicted_w: p.power_w.clone(),
            }
        })
        .collect();
    Fig7Report { panels }
}

impl Fig7Report {
    /// Renders the panels with their accuracies.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "== Figure 7: predicted vs measured power, real applications on GA100 ==\n",
        );
        for p in &self.panels {
            out.push_str(&format!(
                "{:<10} accuracy {:.1}%\n",
                p.application, p.accuracy_pct
            ));
            for i in (0..p.frequency_mhz.len()).step_by(12) {
                out.push_str(&format!(
                    "  {:>6.0} MHz  measured {:>6.1} W  predicted {:>6.1} W\n",
                    p.frequency_mhz[i], p.measured_w[i], p.predicted_w[i]
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn power_accuracy_in_paper_band() {
        // Paper Table 3: GA100 power accuracy > 95% for every application.
        let r = run(testlab::shared());
        for p in &r.panels {
            assert!(
                p.accuracy_pct > 92.0,
                "{}: power accuracy {:.1}%",
                p.application,
                p.accuracy_pct
            );
        }
    }

    #[test]
    fn both_series_increase_with_frequency() {
        let r = run(testlab::shared());
        for p in &r.panels {
            assert!(p.measured_w.last().unwrap() > &p.measured_w[0]);
            assert!(p.predicted_w.last().unwrap() > &p.predicted_w[0]);
        }
    }

    #[test]
    fn six_panels_in_paper_order() {
        let r = run(testlab::shared());
        let names: Vec<&str> = r.panels.iter().map(|p| p.application.as_str()).collect();
        assert_eq!(
            names,
            ["LAMMPS", "NAMD", "GROMACS", "LSTM", "BERT", "ResNet50"]
        );
    }
}
