//! One driver per paper table and figure (see DESIGN.md §5).
//!
//! Every driver takes a [`Lab`] — the shared experimental setup holding the
//! two simulated GPUs, the GA100-trained pipeline and the per-application
//! measured/predicted profiles — and returns a typed, serializable report
//! with a `render()` method that prints the paper's rows/series.

pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod training_fit;

use crate::pipeline::TrainedPipeline;
use crate::predictor::{measured_profile, PredictedProfile};
use gpu_model::PhasedWorkload;
use rayon::prelude::*;
use std::collections::BTreeMap;
use telemetry::{GpuBackend, SimulatorBackend};

/// The shared experimental setup: simulated devices, the trained pipeline,
/// the six evaluation applications, and their measured/predicted profiles
/// on both architectures.
pub struct Lab {
    /// The Ampere device the models are trained on.
    pub ga100: SimulatorBackend,
    /// The Volta device used for the portability study.
    pub gv100: SimulatorBackend,
    /// The GA100-trained pipeline (models + campaign data).
    pub pipeline: TrainedPipeline,
    /// The six real applications (paper Table 2).
    pub apps: Vec<PhasedWorkload>,
    /// Measured per-frequency profiles on GA100, by application.
    pub measured_ga100: BTreeMap<String, PredictedProfile>,
    /// Model-predicted profiles on GA100, by application.
    pub predicted_ga100: BTreeMap<String, PredictedProfile>,
    /// Measured profiles on GV100.
    pub measured_gv100: BTreeMap<String, PredictedProfile>,
    /// Predicted profiles on GV100 (same GA100-trained models).
    pub predicted_gv100: BTreeMap<String, PredictedProfile>,
}

impl Lab {
    /// Builds the full paper setup: every used DVFS state (61 on GA100,
    /// 117 on GV100), three runs per point, all 21 training benchmarks.
    /// Takes ~15 s of compute.
    pub fn paper() -> Self {
        Self::with_stride(1)
    }

    /// Builds a reduced setup that subsamples the training grid — same
    /// code paths, faster; used by tests.
    pub fn with_stride(stride: usize) -> Self {
        obs::span!("lab");
        let ga100 = SimulatorBackend::ga100();
        let gv100 = SimulatorBackend::gv100();
        let pipeline = TrainedPipeline::train_on(&ga100, stride);
        let apps = kernels::apps::evaluation_apps();

        obs::span!("evaluation");
        // One trained model pair serves every application on both devices:
        // the two predictors below borrow `pipeline.models` and are reused
        // across the whole sweep. Applications are independent (the
        // simulator's pure profiling path touches no device state), so the
        // four profiles per app are computed in parallel across the rayon
        // pool; results are keyed by name, making the maps order-free.
        let predictor_ga = pipeline.predictor(ga100.spec().clone());
        let predictor_gv = pipeline.predictor(gv100.spec().clone());
        // Each per-app evaluation (4 profile sweeps) is one complete
        // event on the trace timeline, tagged with the app name.
        let trace_eval = obs::trace::intern("lab.evaluate_app");
        let trace_arg_app = obs::trace::intern("app");
        let evaluated: Vec<_> = apps
            .par_iter()
            .map(|app| {
                let t0 = obs::trace::now_ns();
                let row = (
                    app.name.clone(),
                    measured_profile(&ga100, app),
                    predictor_ga.predict_online(&ga100, app),
                    measured_profile(&gv100, app),
                    predictor_gv.predict_online(&gv100, app),
                );
                obs::trace::complete(
                    trace_eval,
                    t0,
                    &[(
                        trace_arg_app,
                        obs::trace::ArgValue::Str(obs::trace::intern(&app.name)),
                    )],
                );
                row
            })
            .collect();
        let mut measured_ga100 = BTreeMap::new();
        let mut predicted_ga100 = BTreeMap::new();
        let mut measured_gv100 = BTreeMap::new();
        let mut predicted_gv100 = BTreeMap::new();
        for (name, m_ga, p_ga, m_gv, p_gv) in evaluated {
            measured_ga100.insert(name.clone(), m_ga);
            predicted_ga100.insert(name.clone(), p_ga);
            measured_gv100.insert(name.clone(), m_gv);
            predicted_gv100.insert(name, p_gv);
        }
        Self {
            ga100,
            gv100,
            pipeline,
            apps,
            measured_ga100,
            predicted_ga100,
            measured_gv100,
            predicted_gv100,
        }
    }

    /// Application names in the paper's order.
    pub fn app_names(&self) -> Vec<String> {
        self.apps.iter().map(|a| a.name.clone()).collect()
    }
}

#[cfg(test)]
pub(crate) mod testlab {
    use super::Lab;
    use std::sync::OnceLock;

    /// One shared Lab for all experiment tests: training is the expensive
    /// part, so do it once. Stride 2 keeps full qualitative behaviour.
    pub fn shared() -> &'static Lab {
        static LAB: OnceLock<Lab> = OnceLock::new();
        LAB.get_or_init(|| Lab::with_stride(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_profiles_cover_both_grids() {
        let lab = testlab::shared();
        assert_eq!(lab.apps.len(), 6);
        for name in lab.app_names() {
            assert_eq!(lab.measured_ga100[&name].frequencies.len(), 61);
            assert_eq!(lab.predicted_ga100[&name].frequencies.len(), 61);
            assert_eq!(lab.measured_gv100[&name].frequencies.len(), 117);
            assert_eq!(lab.predicted_gv100[&name].frequencies.len(), 117);
        }
    }
}
