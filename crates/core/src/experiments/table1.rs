//! Table 1: specifications of the GPUs used in this study.

use super::Lab;
use gpu_model::DvfsGrid;
use serde::{Deserialize, Serialize};
use telemetry::GpuBackend;

/// The Table 1 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Report {
    /// Row labels.
    pub rows: Vec<String>,
    /// GA100 column.
    pub ga100: Vec<String>,
    /// GV100 column.
    pub gv100: Vec<String>,
}

/// Builds the spec table, including the used/supported DVFS state counts.
pub fn run(lab: &Lab) -> Table1Report {
    let a = lab.ga100.spec();
    let v = lab.gv100.spec();
    let ga_grid = DvfsGrid::for_spec(a);
    let gv_grid = DvfsGrid::for_spec(v);

    let mut rows = Vec::new();
    let mut ga100 = Vec::new();
    let mut gv100 = Vec::new();
    for ((label, va), (_, vv)) in a.table1_rows().into_iter().zip(v.table1_rows()) {
        rows.push(label);
        ga100.push(va);
        gv100.push(vv);
    }
    rows.insert(2, "Used DVFS Configurations".to_string());
    ga100.insert(
        2,
        format!("{} out of {}", ga_grid.num_used(), ga_grid.num_supported()),
    );
    gv100.insert(
        2,
        format!("{} out of {}", gv_grid.num_used(), gv_grid.num_supported()),
    );

    Table1Report { rows, ga100, gv100 }
}

impl Table1Report {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::from("== Table 1: GPU specifications ==\n");
        out.push_str(&format!("{:<34} {:>16} {:>16}\n", "", "GA100", "GV100"));
        for i in 0..self.rows.len() {
            out.push_str(&format!(
                "{:<34} {:>16} {:>16}\n",
                self.rows[i], self.ga100[i], self.gv100[i]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn matches_paper_table1() {
        let r = run(testlab::shared());
        let s = r.render();
        assert!(s.contains("[210:1410]"));
        assert!(s.contains("[135:1380]"));
        assert!(s.contains("61 out of 81"));
        assert!(s.contains("117 out of 167"));
        assert!(s.contains("2039"));
        assert!(s.contains("900"));
        assert!(s.contains("500"));
        assert!(s.contains("250"));
    }

    #[test]
    fn columns_align_with_rows() {
        let r = run(testlab::shared());
        assert_eq!(r.rows.len(), r.ga100.len());
        assert_eq!(r.rows.len(), r.gv100.len());
        assert_eq!(r.rows.len(), 7);
    }
}
