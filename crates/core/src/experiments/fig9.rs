//! Figure 9: the four optimal DVFS selections (M-EDP, P-EDP, M-ED²P,
//! P-ED²P) overlaid on each application's power/time curves.

use super::Lab;
use crate::evaluation::{four_way_selection, SelectionRow};
use serde::{Deserialize, Serialize};

/// One application's Figure 9 panel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionPanel {
    /// Application name.
    pub application: String,
    /// Frequencies in MHz.
    pub frequency_mhz: Vec<f64>,
    /// Measured power curve (W).
    pub power_w: Vec<f64>,
    /// Measured execution-time curve (s).
    pub time_s: Vec<f64>,
    /// The four selector outcomes.
    pub selections: SelectionRow,
}

/// The Figure 9 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Report {
    /// One panel per application.
    pub panels: Vec<SelectionPanel>,
}

/// Builds the six selection panels.
pub fn run(lab: &Lab) -> Fig9Report {
    let panels = lab
        .app_names()
        .into_iter()
        .map(|name| {
            let m = &lab.measured_ga100[&name];
            let p = &lab.predicted_ga100[&name];
            SelectionPanel {
                application: name,
                frequency_mhz: m.frequencies.clone(),
                power_w: m.power_w.clone(),
                time_s: m.time_s.clone(),
                selections: four_way_selection(m, p),
            }
        })
        .collect();
    Fig9Report { panels }
}

impl Fig9Report {
    /// Renders the selector markers per application.
    pub fn render(&self) -> String {
        let mut out = String::from("== Figure 9: optimal DVFS configurations (GA100) ==\n");
        out.push_str(&format!(
            "{:<10} {:>8} {:>8} {:>8} {:>8}\n",
            "app", "M-ED2P", "P-ED2P", "M-EDP", "P-EDP"
        ));
        for p in &self.panels {
            let s = &p.selections;
            out.push_str(&format!(
                "{:<10} {:>8.0} {:>8.0} {:>8.0} {:>8.0}\n",
                p.application,
                s.m_ed2p.frequency_mhz,
                s.p_ed2p.frequency_mhz,
                s.m_edp.frequency_mhz,
                s.p_edp.frequency_mhz
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn all_optima_are_at_or_below_max_frequency() {
        let r = run(testlab::shared());
        for p in &r.panels {
            for f in [
                p.selections.m_ed2p.frequency_mhz,
                p.selections.p_ed2p.frequency_mhz,
                p.selections.m_edp.frequency_mhz,
                p.selections.p_edp.frequency_mhz,
            ] {
                assert!((510.0..=1410.0).contains(&f));
            }
        }
    }

    #[test]
    fn ed2p_selects_at_least_edp_frequency() {
        // The paper: "estimated ED2P optimal frequencies [are] higher than
        // the EDP optimal frequencies, as expected."
        let r = run(testlab::shared());
        for p in &r.panels {
            assert!(
                p.selections.m_ed2p.frequency_mhz >= p.selections.m_edp.frequency_mhz,
                "{}: M-ED2P below M-EDP",
                p.application
            );
            assert!(
                p.selections.p_ed2p.frequency_mhz >= p.selections.p_edp.frequency_mhz,
                "{}: P-ED2P below P-EDP",
                p.application
            );
        }
    }

    #[test]
    fn most_measured_optima_are_below_max() {
        // "Optimal frequencies for each benchmark's measured and predicted
        // data were less than the maximum core frequency" — ResNet50's
        // ED²P is the paper's near-max outlier, so check EDP strictly and
        // allow one ED²P at the top bin.
        let r = run(testlab::shared());
        for p in &r.panels {
            assert!(
                p.selections.m_edp.frequency_mhz < 1410.0,
                "{}",
                p.application
            );
        }
        let below = r
            .panels
            .iter()
            .filter(|p| p.selections.m_ed2p.frequency_mhz < 1395.0)
            .count();
        assert!(below >= 4, "only {below} apps have interior M-ED2P optima");
    }

    #[test]
    fn per_app_optima_differ() {
        // No universally optimal configuration (paper Section 2).
        let r = run(testlab::shared());
        let freqs: std::collections::BTreeSet<i64> = r
            .panels
            .iter()
            .map(|p| p.selections.m_ed2p.frequency_mhz as i64)
            .collect();
        assert!(freqs.len() >= 3, "M-ED2P optima collapse to {freqs:?}");
    }
}
