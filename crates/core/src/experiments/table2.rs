//! Table 2: applications used for training and evaluation.

use super::Lab;
use serde::{Deserialize, Serialize};

/// The Table 2 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Report {
    /// `(category, applications)` rows.
    pub rows: Vec<(String, String)>,
}

/// Builds the application listing from the live suite definitions.
pub fn run(lab: &Lab) -> Table2Report {
    let mut rows: Vec<(String, String)> = kernels::suite::table2_rows()
        .into_iter()
        .map(|(c, a)| (c.to_string(), a))
        .collect();
    // Cross-check the evaluation row against the lab's actual apps.
    let live = lab.app_names().join(", ");
    if let Some(row) = rows.iter_mut().find(|(c, _)| c.starts_with("Real-world")) {
        row.1 = live;
    }
    Table2Report { rows }
}

impl Table2Report {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::from("== Table 2: applications used in this study ==\n");
        for (cat, apps) in &self.rows {
            out.push_str(&format!("{cat:<30} {apps}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn lists_19_spec_accel_workloads() {
        let r = run(testlab::shared());
        let spec_row = &r.rows[0].1;
        assert_eq!(spec_row.split(", ").count(), 19);
        assert!(spec_row.contains("TPACF") && spec_row.contains("BPLUSTREE"));
    }

    #[test]
    fn micro_and_real_rows_match_paper() {
        let r = run(testlab::shared());
        assert_eq!(r.rows[1].1, "DGEMM, STREAM");
        assert_eq!(r.rows[2].1, "LAMMPS, NAMD, GROMACS, LSTM, BERT, ResNet50");
    }
}
