//! Figure 1: power, execution time, energy, and FLOPS/bandwidth of DGEMM
//! and STREAM across the 61 used GA100 DVFS configurations.

use super::Lab;
use gpu_model::model;
use kernels::micro::{Dgemm, Stream};
use kernels::Kernel;
use serde::{Deserialize, Serialize};
use telemetry::GpuBackend;

/// One micro-benchmark's panels (one row of Figure 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MicroBenchCurves {
    /// Benchmark name.
    pub name: String,
    /// Frequencies in MHz, ascending.
    pub frequency_mhz: Vec<f64>,
    /// Panel (a)/(e): power in watts.
    pub power_w: Vec<f64>,
    /// Panel (b)/(f): execution time in seconds.
    pub time_s: Vec<f64>,
    /// Panel (c)/(g): energy in joules.
    pub energy_j: Vec<f64>,
    /// Panel (d): achieved GFLOP/s (DGEMM) — or panel (h): achieved GB/s
    /// (STREAM).
    pub throughput: Vec<f64>,
    /// Unit of `throughput` ("GFLOP/s" or "GB/s").
    pub throughput_unit: String,
    /// Frequency with minimal energy.
    pub optimal_energy_mhz: f64,
    /// Frequency with minimal execution time.
    pub optimal_time_mhz: f64,
}

/// The full Figure 1 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Report {
    /// Upper row: DGEMM (compute intensive).
    pub dgemm: MicroBenchCurves,
    /// Lower row: STREAM (memory intensive).
    pub stream: MicroBenchCurves,
}

fn curves(
    lab: &Lab,
    sig: &gpu_model::WorkloadSignature,
    unit: &str,
    bandwidth: bool,
) -> MicroBenchCurves {
    let spec = lab.ga100.spec();
    let freqs = lab.ga100.grid().used();
    let mut power_w = Vec::with_capacity(freqs.len());
    let mut time_s = Vec::with_capacity(freqs.len());
    let mut energy_j = Vec::with_capacity(freqs.len());
    let mut throughput = Vec::with_capacity(freqs.len());
    for &f in &freqs {
        power_w.push(model::power(spec, sig, f));
        time_s.push(model::exec_time(spec, sig, f));
        energy_j.push(model::energy(spec, sig, f));
        throughput.push(if bandwidth {
            model::achieved_bandwidth_gbs(spec, sig, f)
        } else {
            model::achieved_gflops(spec, sig, f)
        });
    }
    let e_idx = tensor::reduce::argmin(&energy_j).expect("non-empty grid");
    let t_idx = tensor::reduce::argmin(&time_s).expect("non-empty grid");
    MicroBenchCurves {
        name: sig.name.clone(),
        optimal_energy_mhz: freqs[e_idx],
        optimal_time_mhz: freqs[t_idx],
        frequency_mhz: freqs,
        power_w,
        time_s,
        energy_j,
        throughput,
        throughput_unit: unit.to_string(),
    }
}

/// Runs the Figure 1 experiment.
pub fn run(lab: &Lab) -> Fig1Report {
    let spec = lab.ga100.spec();
    let dgemm_sig = Dgemm::default().signature(spec);
    let stream_sig = Stream::default().signature(spec);
    Fig1Report {
        dgemm: curves(lab, &dgemm_sig, "GFLOP/s", false),
        stream: curves(lab, &stream_sig, "GB/s", true),
    }
}

impl Fig1Report {
    /// Renders the eight panels as frequency series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (bench, label) in [
            (&self.dgemm, "DGEMM (compute-intensive)"),
            (&self.stream, "STREAM (memory-intensive)"),
        ] {
            out.push_str(&format!(
                "== Figure 1: {label} on GA100 ==\n\
                 optimal energy at {:.0} MHz, optimal run time at {:.0} MHz\n",
                bench.optimal_energy_mhz, bench.optimal_time_mhz
            ));
            out.push_str(&format!(
                "{:<10} {:>9} {:>9} {:>10} {:>12}\n",
                "f (MHz)", "P (W)", "T (s)", "E (J)", bench.throughput_unit
            ));
            for i in (0..bench.frequency_mhz.len()).step_by(6) {
                out.push_str(&format!(
                    "{:<10.0} {:>9.1} {:>9.2} {:>10.0} {:>12.0}\n",
                    bench.frequency_mhz[i],
                    bench.power_w[i],
                    bench.time_s[i],
                    bench.energy_j[i],
                    bench.throughput[i]
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn dgemm_reaches_tdp_and_stream_half() {
        let r = run(testlab::shared());
        let tdp = 500.0;
        assert!((r.dgemm.power_w.last().unwrap() - tdp).abs() / tdp < 0.08);
        let frac = r.stream.power_w.last().unwrap() / tdp;
        assert!((0.4..=0.6).contains(&frac));
    }

    #[test]
    fn optimal_frequencies_are_interior_for_energy() {
        let r = run(testlab::shared());
        // Figure 1: DGEMM optimal energy ~1080 MHz, STREAM ~1005 MHz.
        assert!((900.0..=1200.0).contains(&r.dgemm.optimal_energy_mhz));
        assert!((870.0..=1100.0).contains(&r.stream.optimal_energy_mhz));
        // Run time is optimal at (or extremely near) the maximum frequency.
        assert!(r.dgemm.optimal_time_mhz >= 1395.0);
    }

    #[test]
    fn dgemm_flops_scale_linearly_stream_bw_saturates() {
        let r = run(testlab::shared());
        let g = &r.dgemm.throughput;
        let ratio = g.last().unwrap() / g[0];
        let f_ratio = 1410.0 / 510.0;
        assert!(
            (ratio - f_ratio).abs() / f_ratio < 0.1,
            "FLOPS ratio {ratio:.2}"
        );
        // STREAM bandwidth at max is < 15% above its 900 MHz value.
        let bw = &r.stream.throughput;
        let idx_900 = r
            .stream
            .frequency_mhz
            .iter()
            .position(|&f| f == 900.0)
            .expect("900 MHz on grid");
        assert!(bw.last().unwrap() / bw[idx_900] < 1.15);
    }

    #[test]
    fn render_contains_panel_headers() {
        let r = run(testlab::shared());
        let s = r.render();
        assert!(s.contains("DGEMM"));
        assert!(s.contains("STREAM"));
        assert!(s.contains("GFLOP/s") && s.contains("GB/s"));
    }
}
