//! Table 4: the optimal frequencies selected by M-ED²P, P-ED²P, M-EDP and
//! P-EDP for each application on GA100.

use super::Lab;
use crate::evaluation::{four_way_selection, SelectionRow};
use serde::{Deserialize, Serialize};

/// The Table 4 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Report {
    /// One selection row per application.
    pub rows: Vec<SelectionRow>,
}

/// Runs the four selectors for every application.
pub fn run(lab: &Lab) -> Table4Report {
    let rows = lab
        .app_names()
        .into_iter()
        .map(|name| four_way_selection(&lab.measured_ga100[&name], &lab.predicted_ga100[&name]))
        .collect();
    Table4Report { rows }
}

impl Table4Report {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::from("== Table 4: optimal frequencies (MHz) on GA100 ==\n");
        out.push_str(&format!(
            "{:<10} {:>8} {:>8} {:>8} {:>8}\n",
            "app", "M-ED2P", "P-ED2P", "M-EDP", "P-EDP"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>8.0} {:>8.0} {:>8.0} {:>8.0}\n",
                r.application,
                r.m_ed2p.frequency_mhz,
                r.p_ed2p.frequency_mhz,
                r.m_edp.frequency_mhz,
                r.p_edp.frequency_mhz
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;
    use telemetry::GpuBackend;

    #[test]
    fn frequencies_are_on_the_used_grid() {
        let lab = testlab::shared();
        let r = run(lab);
        let used = lab.ga100.grid().used();
        for row in &r.rows {
            for f in [
                row.m_ed2p.frequency_mhz,
                row.p_ed2p.frequency_mhz,
                row.m_edp.frequency_mhz,
                row.p_edp.frequency_mhz,
            ] {
                assert!(used.contains(&f), "{}: {f} off grid", row.application);
            }
        }
    }

    #[test]
    fn predicted_and_measured_optima_are_close_for_most_apps() {
        // The paper's P vs M gaps reach ~200 MHz (LSTM: 810 vs 1065);
        // require the majority of apps within 300 MHz.
        let r = run(testlab::shared());
        let close = r
            .rows
            .iter()
            .filter(|row| (row.m_edp.frequency_mhz - row.p_edp.frequency_mhz).abs() <= 300.0)
            .count();
        assert!(close >= 4, "only {close}/6 apps have close M/P EDP optima");
    }

    #[test]
    fn lstm_measured_optimum_is_the_lowest() {
        // The paper's LSTM picks the deepest downclock (810 MHz M-ED2P).
        let r = run(testlab::shared());
        let lstm = r.rows.iter().find(|x| x.application == "LSTM").unwrap();
        for row in &r.rows {
            assert!(
                lstm.m_ed2p.frequency_mhz <= row.m_ed2p.frequency_mhz,
                "LSTM {} vs {} {}",
                lstm.m_ed2p.frequency_mhz,
                row.application,
                row.m_ed2p.frequency_mhz
            );
        }
    }
}
