//! Figure 2: the methodology overview — executed rather than drawn.
//!
//! The paper's Figure 2 is the two-phase pipeline diagram. This driver
//! walks every box of that diagram against the live system and reports
//! the artifact each stage produced, so the "figure" doubles as an
//! end-to-end self-check of the reproduction.

use super::Lab;
use crate::objective::Objective;
use serde::{Deserialize, Serialize};

/// One stage of the Figure 2 pipeline and the artifact it produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stage {
    /// Phase label ("offline" / "online").
    pub phase: String,
    /// Box name as in the figure.
    pub stage: String,
    /// What the live system produced for it.
    pub artifact: String,
}

/// The Figure 2 report: the executed pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Report {
    /// Stages in diagram order.
    pub stages: Vec<Stage>,
}

/// Walks the two phases of the methodology over the lab's artifacts.
pub fn run(lab: &Lab) -> Fig2Report {
    let mut stages = Vec::new();
    let mut off = |stage: &str, artifact: String| {
        stages.push(Stage {
            phase: "offline".into(),
            stage: stage.into(),
            artifact,
        });
    };

    let n_workloads = {
        let mut names: Vec<&str> = lab
            .pipeline
            .samples
            .iter()
            .map(|s| s.workload.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    };
    off(
        "run benchmarks across DVFS configs",
        format!(
            "{} samples: {} workloads x {} states x 3 runs",
            lab.pipeline.samples.len(),
            n_workloads,
            lab.pipeline.samples.len() / (3 * n_workloads)
        ),
    );
    off(
        "feature analysis & selection",
        "fp_active, dram_active, sm_app_clock (see Figure 3)".into(),
    );
    off(
        "construct normalized dataset",
        format!(
            "{} rows x 3 features, 2 targets",
            lab.pipeline.dataset.len()
        ),
    );
    off(
        "train power model",
        format!(
            "3x64 SELU, RMSprop, {} epochs, final loss {:.5}",
            lab.pipeline.models.power_history.train_loss.len(),
            lab.pipeline.models.power_history.train_loss.last().unwrap()
        ),
    );
    off(
        "train performance model",
        format!(
            "3x64 SELU, RMSprop, {} epochs, final loss {:.5}",
            lab.pipeline.models.time_history.train_loss.len(),
            lab.pipeline.models.time_history.train_loss.last().unwrap()
        ),
    );

    let mut on = |stage: &str, artifact: String| {
        stages.push(Stage {
            phase: "online".into(),
            stage: stage.into(),
            artifact,
        });
    };
    let app = &lab.apps[0];
    let profile = &lab.predicted_ga100[&app.name];
    on(
        "run application at default frequency",
        format!("{}: one reference run at 1410 MHz", app.name),
    );
    on(
        "predict power & time across DVFS space",
        format!("{} predicted (P, T) pairs", profile.frequencies.len()),
    );
    on(
        "compute energy E(f) = P(f) x T(f)",
        format!(
            "E spans {:.0}..{:.0} J",
            profile
                .energy_j
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min),
            profile
                .energy_j
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max)
        ),
    );
    let sel = profile.select(Objective::Ed2p, None);
    on(
        "select optimal frequency (Algorithm 1)",
        format!("ED2P optimum {:.0} MHz", sel.frequency_mhz),
    );
    Fig2Report { stages }
}

impl Fig2Report {
    /// Renders the executed pipeline.
    pub fn render(&self) -> String {
        let mut out = String::from("== Figure 2: methodology overview (executed) ==\n");
        let mut last_phase = "";
        for s in &self.stages {
            if s.phase != last_phase {
                out.push_str(&format!("[{} phase]\n", s.phase));
                last_phase = &s.phase;
            }
            out.push_str(&format!("  {:<42} -> {}\n", s.stage, s.artifact));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn all_nine_stages_execute() {
        let r = run(testlab::shared());
        assert_eq!(r.stages.len(), 9);
        assert_eq!(r.stages.iter().filter(|s| s.phase == "offline").count(), 5);
        assert_eq!(r.stages.iter().filter(|s| s.phase == "online").count(), 4);
    }

    #[test]
    fn artifacts_reflect_live_data() {
        let lab = testlab::shared();
        let r = run(lab);
        assert!(r.stages[2]
            .artifact
            .contains(&lab.pipeline.dataset.len().to_string()));
        assert!(r.render().contains("ED2P optimum"));
    }
}
