//! Beyond the paper: the generalization gap between *seen* training
//! benchmarks and *unseen* applications.
//!
//! The paper evaluates only on unseen applications. This companion
//! experiment scores the same models on the 21 benchmarks they were
//! trained on, quantifying how much of the (small) real-application error
//! is generalization rather than capacity — the fit on seen workloads
//! should be tighter than on the unseen apps, with both in the 90s.

use super::Lab;
use crate::evaluation::accuracy_row;
use crate::predictor::{measured_profile, PredictedProfile};
use kernels::suite::training_suite;
use nn::metrics;
use serde::{Deserialize, Serialize};
use telemetry::GpuBackend;

/// One workload's seen-data accuracy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Power accuracy (100 − MAPE) over the grid.
    pub power_accuracy: f64,
    /// Normalized-time accuracy.
    pub time_accuracy: f64,
}

/// The training-fit report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingFitReport {
    /// One row per training benchmark.
    pub rows: Vec<FitRow>,
    /// Mean power accuracy over the training benchmarks.
    pub mean_power: f64,
    /// Mean time accuracy over the training benchmarks.
    pub mean_time: f64,
    /// Mean power accuracy over the unseen applications (for the gap).
    pub apps_mean_power: f64,
    /// Mean time accuracy over the unseen applications.
    pub apps_mean_time: f64,
}

/// Scores the trained models on their own training benchmarks.
pub fn run(lab: &Lab) -> TrainingFitReport {
    let spec = lab.ga100.spec().clone();
    let predictor = lab.pipeline.predictor(spec);
    let mut rows = Vec::new();
    for k in training_suite() {
        let workload = k.workload(lab.ga100.spec());
        let measured = measured_profile(&lab.ga100, &workload);
        let predicted: PredictedProfile = predictor.predict_online(&lab.ga100, &workload);
        let acc = accuracy_row(&measured, &predicted);
        rows.push(FitRow {
            benchmark: k.name().to_string(),
            power_accuracy: acc.power_accuracy,
            time_accuracy: acc.time_accuracy,
        });
    }
    let mean =
        |f: &dyn Fn(&FitRow) -> f64| -> f64 { rows.iter().map(f).sum::<f64>() / rows.len() as f64 };
    let app_acc: Vec<(f64, f64)> = lab
        .app_names()
        .iter()
        .map(|name| {
            let m = &lab.measured_ga100[name];
            let p = &lab.predicted_ga100[name];
            (
                metrics::accuracy_from_mape(&p.power_w, &m.power_w),
                metrics::accuracy_from_mape(&p.normalized_time(), &m.normalized_time()),
            )
        })
        .collect();
    TrainingFitReport {
        mean_power: mean(&|r| r.power_accuracy),
        mean_time: mean(&|r| r.time_accuracy),
        apps_mean_power: app_acc.iter().map(|a| a.0).sum::<f64>() / app_acc.len() as f64,
        apps_mean_time: app_acc.iter().map(|a| a.1).sum::<f64>() / app_acc.len() as f64,
        rows,
    }
}

impl TrainingFitReport {
    /// Renders the fit table and the generalization gap.
    pub fn render(&self) -> String {
        let mut out = String::from("== Training-set fit vs unseen-application accuracy ==\n");
        out.push_str(&format!(
            "{:<12} {:>9} {:>9}\n",
            "benchmark", "power", "time"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>8.1}% {:>8.1}%\n",
                r.benchmark, r.power_accuracy, r.time_accuracy
            ));
        }
        out.push_str(&format!(
            "\nseen mean:   power {:>5.1}%  time {:>5.1}%\n\
             unseen mean: power {:>5.1}%  time {:>5.1}%\n\
             generalization gap: power {:+.1} pts, time {:+.1} pts\n",
            self.mean_power,
            self.mean_time,
            self.apps_mean_power,
            self.apps_mean_time,
            self.apps_mean_power - self.mean_power,
            self.apps_mean_time - self.mean_time
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn covers_all_21_benchmarks() {
        let r = run(testlab::shared());
        assert_eq!(r.rows.len(), 21);
    }

    #[test]
    fn seen_fit_is_strong() {
        let r = run(testlab::shared());
        assert!(r.mean_power > 93.0, "seen power fit {:.1}%", r.mean_power);
        assert!(r.mean_time > 88.0, "seen time fit {:.1}%", r.mean_time);
    }

    #[test]
    fn generalization_gap_is_bounded() {
        // Unseen apps should not trail the seen benchmarks by a chasm:
        // within ~8 points on power.
        let r = run(testlab::shared());
        assert!(
            r.apps_mean_power > r.mean_power - 8.0,
            "seen {:.1} vs unseen {:.1}",
            r.mean_power,
            r.apps_mean_power
        );
    }
}
