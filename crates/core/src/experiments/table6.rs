//! Table 6: LAMMPS and ResNet50 under performance-degradation thresholds
//! (Nil / 5% / 1%), selected with predicted-data EDP + Algorithm 1.

use super::Lab;
use crate::evaluation::{trade_off, TradeOff};
use crate::objective::Objective;
use serde::{Deserialize, Serialize};

/// One (application, threshold) outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdOutcome {
    /// Application name.
    pub application: String,
    /// Threshold as a fraction (None = Nil).
    pub threshold: Option<f64>,
    /// Chosen frequency in MHz.
    pub frequency_mhz: f64,
    /// Outcome evaluated on measured data.
    pub outcome: TradeOff,
}

/// The Table 6 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6Report {
    /// Outcomes for each (application, threshold) combination.
    pub outcomes: Vec<ThresholdOutcome>,
}

/// The paper's two high-penalty applications.
const APPS: [&str; 2] = ["LAMMPS", "ResNet50"];
/// The paper's three thresholds.
const THRESHOLDS: [Option<f64>; 3] = [None, Some(0.05), Some(0.01)];

/// Runs the threshold study.
pub fn run(lab: &Lab) -> Table6Report {
    let mut outcomes = Vec::new();
    for app in APPS {
        let measured = &lab.measured_ga100[app];
        let predicted = &lab.predicted_ga100[app];
        for th in THRESHOLDS {
            // Selection happens on *predicted* data (the deployable path);
            // Algorithm 1's threshold walk uses the predicted performance.
            let sel = predicted.select(Objective::Edp, th);
            outcomes.push(ThresholdOutcome {
                application: app.to_string(),
                threshold: th,
                frequency_mhz: sel.frequency_mhz,
                outcome: trade_off(measured, sel.index),
            });
        }
    }
    Table6Report { outcomes }
}

impl Table6Report {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out =
            String::from("== Table 6: EDP selection under performance thresholds (GA100) ==\n");
        out.push_str(&format!(
            "{:<10} {:>11} {:>8} {:>9} {:>10}\n",
            "app", "threshold", "f (MHz)", "Time (%)", "Energy (%)"
        ));
        for o in &self.outcomes {
            let th = o
                .threshold
                .map(|t| format!("{:.0}%", t * 100.0))
                .unwrap_or_else(|| "Nil".to_string());
            out.push_str(&format!(
                "{:<10} {:>11} {:>8.0} {:>9.1} {:>10.1}\n",
                o.application,
                th,
                o.frequency_mhz,
                o.outcome.time_change_pct,
                o.outcome.energy_saving_pct
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn tighter_thresholds_raise_frequency() {
        let r = run(testlab::shared());
        for app in APPS {
            let by_th: Vec<&ThresholdOutcome> =
                r.outcomes.iter().filter(|o| o.application == app).collect();
            assert_eq!(by_th.len(), 3);
            // Nil <= 5% <= 1% in frequency.
            assert!(by_th[0].frequency_mhz <= by_th[1].frequency_mhz);
            assert!(by_th[1].frequency_mhz <= by_th[2].frequency_mhz);
        }
    }

    #[test]
    fn thresholds_bound_the_predicted_loss() {
        // The guarantee is on predicted degradation; measured loss at the
        // 1% threshold must at least be far smaller than at Nil.
        let r = run(testlab::shared());
        for app in APPS {
            let outcomes: Vec<&ThresholdOutcome> =
                r.outcomes.iter().filter(|o| o.application == app).collect();
            let nil_loss = -outcomes[0].outcome.time_change_pct;
            let tight_loss = -outcomes[2].outcome.time_change_pct;
            assert!(
                tight_loss <= nil_loss.max(0.0) + 0.5,
                "{app}: 1% threshold loss {tight_loss:.1}% vs nil {nil_loss:.1}%"
            );
        }
    }

    #[test]
    fn tighter_thresholds_reduce_savings() {
        // Paper: "thresholds limit the DVFS exploration space and can yield
        // no energy savings".
        let r = run(testlab::shared());
        for app in APPS {
            let outcomes: Vec<&ThresholdOutcome> =
                r.outcomes.iter().filter(|o| o.application == app).collect();
            assert!(
                outcomes[2].outcome.energy_saving_pct
                    <= outcomes[0].outcome.energy_saving_pct + 1.0,
                "{app}: tight threshold should not increase savings"
            );
        }
    }

    #[test]
    fn six_outcomes_total() {
        let r = run(testlab::shared());
        assert_eq!(r.outcomes.len(), 6);
    }
}
