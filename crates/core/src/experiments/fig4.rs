//! Figure 4: impact of DVFS on fp_active and dram_active for DGEMM and
//! STREAM.

use super::Lab;
use serde::{Deserialize, Serialize};

/// Activity traces of one benchmark across the DVFS grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivityTrace {
    /// Benchmark name.
    pub name: String,
    /// Frequencies in MHz.
    pub frequency_mhz: Vec<f64>,
    /// Measured fp_active per frequency (mean over runs).
    pub fp_active: Vec<f64>,
    /// Measured dram_active per frequency (mean over runs).
    pub dram_active: Vec<f64>,
}

impl ActivityTrace {
    /// Absolute peak-to-peak swing of fp_active.
    pub fn fp_swing(&self) -> f64 {
        swing(&self.fp_active)
    }

    /// Absolute peak-to-peak swing of dram_active.
    pub fn dram_swing(&self) -> f64 {
        swing(&self.dram_active)
    }
}

fn swing(xs: &[f64]) -> f64 {
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

/// The Figure 4 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Report {
    /// DGEMM and STREAM traces.
    pub traces: Vec<ActivityTrace>,
}

/// Extracts per-frequency mean activities from the campaign samples.
pub fn run(lab: &Lab) -> Fig4Report {
    let traces = ["DGEMM", "STREAM"]
        .iter()
        .map(|&name| {
            let mut freqs: Vec<f64> = lab
                .pipeline
                .samples
                .iter()
                .filter(|s| s.workload == name)
                .map(|s| s.sm_app_clock)
                .collect();
            freqs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            freqs.dedup();
            let mean_at = |f: f64, getter: &dyn Fn(&gpu_model::MetricSample) -> f64| -> f64 {
                let vals: Vec<f64> = lab
                    .pipeline
                    .samples
                    .iter()
                    .filter(|s| s.workload == name && s.sm_app_clock == f)
                    .map(getter)
                    .collect();
                vals.iter().sum::<f64>() / vals.len() as f64
            };
            ActivityTrace {
                name: name.to_string(),
                fp_active: freqs
                    .iter()
                    .map(|&f| mean_at(f, &|s| s.fp_active()))
                    .collect(),
                dram_active: freqs
                    .iter()
                    .map(|&f| mean_at(f, &|s| s.dram_active))
                    .collect(),
                frequency_mhz: freqs,
            }
        })
        .collect();
    Fig4Report { traces }
}

impl Fig4Report {
    /// Renders the four activity series.
    pub fn render(&self) -> String {
        let mut out = String::from("== Figure 4: DVFS impact on computational activities ==\n");
        for t in &self.traces {
            out.push_str(&format!(
                "{}: fp_active swing {:.3}, dram_active swing {:.3} across {} states\n",
                t.name,
                t.fp_swing(),
                t.dram_swing(),
                t.frequency_mhz.len()
            ));
            for i in (0..t.frequency_mhz.len()).step_by(t.frequency_mhz.len().div_ceil(8)) {
                out.push_str(&format!(
                    "  {:>6.0} MHz  fp {:.3}  dram {:.3}\n",
                    t.frequency_mhz[i], t.fp_active[i], t.dram_active[i]
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn fp_activity_is_nearly_dvfs_invariant() {
        let r = run(testlab::shared());
        for t in &r.traces {
            let mean = t.fp_active.iter().sum::<f64>() / t.fp_active.len() as f64;
            assert!(
                t.fp_swing() < f64::max(0.15 * mean, 0.02),
                "{}: fp swing {:.3} around mean {:.3}",
                t.name,
                t.fp_swing(),
                mean
            );
        }
    }

    #[test]
    fn dgemm_dram_activity_varies_with_dvfs() {
        let r = run(testlab::shared());
        let dgemm = &r.traces[0];
        assert_eq!(dgemm.name, "DGEMM");
        // The paper: memory activity "shows variations to some extent".
        assert!(dgemm.dram_swing() > 0.05, "swing {:.3}", dgemm.dram_swing());
    }

    #[test]
    fn covers_both_microbenchmarks() {
        let r = run(testlab::shared());
        assert_eq!(r.traces.len(), 2);
        assert!(r.traces.iter().all(|t| !t.frequency_mhz.is_empty()));
    }

    #[test]
    fn render_mentions_swings() {
        let r = run(testlab::shared());
        assert!(r.render().contains("swing"));
    }
}
