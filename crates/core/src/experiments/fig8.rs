//! Figure 8: normalized predicted vs measured execution time for the six
//! real applications on GA100.

use super::Lab;
use nn::metrics;
use serde::{Deserialize, Serialize};

/// One application's normalized-time panel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimePanel {
    /// Application name.
    pub application: String,
    /// Frequencies in MHz.
    pub frequency_mhz: Vec<f64>,
    /// Measured time normalized to the default clock.
    pub measured_norm: Vec<f64>,
    /// Predicted normalized time.
    pub predicted_norm: Vec<f64>,
    /// Accuracy (100 − MAPE) in percent.
    pub accuracy_pct: f64,
}

/// The Figure 8 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Report {
    /// One panel per application.
    pub panels: Vec<TimePanel>,
}

/// Builds the six normalized-time panels.
pub fn run(lab: &Lab) -> Fig8Report {
    let panels = lab
        .app_names()
        .into_iter()
        .map(|name| {
            let m = lab.measured_ga100[&name].normalized_time();
            let p = lab.predicted_ga100[&name].normalized_time();
            TimePanel {
                application: name,
                frequency_mhz: lab
                    .measured_ga100
                    .values()
                    .next()
                    .unwrap()
                    .frequencies
                    .clone(),
                accuracy_pct: metrics::accuracy_from_mape(&p, &m),
                measured_norm: m,
                predicted_norm: p,
            }
        })
        .collect();
    Fig8Report { panels }
}

impl Fig8Report {
    /// Renders the panels.
    pub fn render(&self) -> String {
        let mut out =
            String::from("== Figure 8: normalized predicted vs measured time, GA100 ==\n");
        for p in &self.panels {
            out.push_str(&format!(
                "{:<10} accuracy {:.1}%\n",
                p.application, p.accuracy_pct
            ));
            for i in (0..p.frequency_mhz.len()).step_by(12) {
                out.push_str(&format!(
                    "  {:>6.0} MHz  measured {:>6.3}  predicted {:>6.3}\n",
                    p.frequency_mhz[i], p.measured_norm[i], p.predicted_norm[i]
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testlab;
    use super::*;

    #[test]
    fn time_accuracy_in_paper_band() {
        // Paper Table 3: GA100 performance accuracy >= 88.4%.
        let r = run(testlab::shared());
        for p in &r.panels {
            assert!(
                p.accuracy_pct > 84.0,
                "{}: time accuracy {:.1}%",
                p.application,
                p.accuracy_pct
            );
        }
    }

    #[test]
    fn gromacs_is_among_the_hardest() {
        // The paper singles out GROMACS (88.7%) as the weak case because
        // its time barely reacts to DVFS.
        let r = run(testlab::shared());
        let gromacs = r
            .panels
            .iter()
            .find(|p| p.application == "GROMACS")
            .unwrap();
        let best = r
            .panels
            .iter()
            .map(|p| p.accuracy_pct)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            gromacs.accuracy_pct < best - 2.0,
            "GROMACS should trail the best app"
        );
    }

    #[test]
    fn normalized_time_is_one_at_fmax_and_larger_below() {
        let r = run(testlab::shared());
        for p in &r.panels {
            assert!((p.measured_norm.last().unwrap() - 1.0).abs() < 1e-9);
            assert!(p.measured_norm[0] >= 1.0);
            assert!(p.predicted_norm[0] > 0.8);
        }
    }

    #[test]
    fn resnet_has_the_steepest_measured_curve() {
        let r = run(testlab::shared());
        let slope = |p: &TimePanel| p.measured_norm[0];
        let resnet = r
            .panels
            .iter()
            .find(|p| p.application == "ResNet50")
            .unwrap();
        for p in &r.panels {
            if p.application != "ResNet50" {
                assert!(
                    slope(resnet) >= slope(p),
                    "ResNet50 should slow the most at 510 MHz ({:.2} vs {} {:.2})",
                    slope(resnet),
                    p.application,
                    slope(p)
                );
            }
        }
    }
}
