//! Immutable, versioned model snapshots behind an atomic pointer swap.
//!
//! The serving daemon (and, down the road, the continual-learning loop)
//! needs to replace the live power/time models while requests are in
//! flight — without a stall, and without a reader ever observing half a
//! swap. The unit of replacement is a [`ModelSnapshot`]: the two trained
//! networks, the device spec they serve, a monotonically increasing
//! version id, and the training metadata, all immutable after
//! construction. Snapshots live in a [`ModelStore`], whose `load()` is
//! wait-free in the steady state: readers clone an `Arc` out of a slot
//! ring and never contend with a publisher (the publisher writes the
//! *next* slot, then flips one atomic index).
//!
//! A reader that loaded version N keeps its `Arc` alive for as long as it
//! wants — predictions made from it after a swap are bitwise identical to
//! before, because nothing in the snapshot can change. That property is
//! what lets `dvfs serve` guarantee old-version responses stay stable
//! across a hot swap (and what a shadow-evaluation/rollback story can
//! build on).

use crate::models::{PowerTimeModels, PredictEngines};
use gpu_model::{DeviceSpec, DvfsGrid};
use nn::Precision;
use obs::quality::QualityConfig;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Provenance carried by every snapshot (surfaced by the serve protocol's
/// `version` command and the promotion trace events).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// Free-form origin label (a file path, "initial", "retrain #3", …).
    pub label: String,
    /// Rows in the dataset the models were fitted on (0 if unknown —
    /// e.g. models restored from JSON).
    pub dataset_rows: usize,
    /// Combined wall-clock training time of both models, seconds
    /// (0 if unknown).
    pub train_seconds: f64,
}

/// One immutable version of the serving models.
///
/// Constructed with version 0 ("unpublished"); [`ModelStore::publish`]
/// assigns the real version id. All fields are read-only by convention —
/// nothing hands out `&mut`.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// Monotonic version id, unique per store (0 = never published).
    pub version: u64,
    /// The trained power + time networks.
    pub models: PowerTimeModels,
    /// The batch-fused inference engines the serving hot path runs on:
    /// weights packed once here, at snapshot build time, so hot-swap
    /// stays wait-free and workers never pack per request.
    pub engines: PredictEngines,
    /// The device the snapshot serves predictions for.
    pub spec: DeviceSpec,
    /// Provenance.
    pub meta: SnapshotMeta,
}

/// Activity probe points for the reduced-precision gate: a 5x5 grid of
/// `(fp_active, dram_active)` pairs spanning the feature space, each
/// swept across the device's full DVFS grid.
const GATE_ACTIVITIES: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

/// The accuracy band reduced precision must stay inside: the paper's
/// models are 88–98% accurate, so a candidate whose rolling MAPE vs the
/// f64 reference exceeds 12% would push serving outside everything the
/// paper reports.
const GATE_WARN_MAPE: f64 = 12.0;

impl ModelSnapshot {
    /// Wraps trained models for publication, serving at full f64
    /// precision (bitwise-identical to the training forward pass).
    pub fn new(models: PowerTimeModels, spec: DeviceSpec, meta: SnapshotMeta) -> Self {
        Self::with_precision(models, spec, meta, Precision::F64)
    }

    /// Wraps trained models for publication at a requested precision,
    /// with the quality monitor as the gate: a reduced-precision
    /// candidate is probed against the f64 reference over the activity
    /// grid x the device's DVFS grid, and **vetoed** — falling back to
    /// f64 with a logged warning — if its rolling MAPE leaves the
    /// paper's 88–98% accuracy band. The probe feeds the global
    /// `quality.precision_power` / `quality.precision_time` monitors, so
    /// the decision is visible in `stats`, scrapes, and exports.
    pub fn with_precision(
        models: PowerTimeModels,
        spec: DeviceSpec,
        meta: SnapshotMeta,
        precision: Precision,
    ) -> Self {
        Self::with_precision_gated(models, spec, meta, precision, GATE_WARN_MAPE)
    }

    /// [`ModelSnapshot::with_precision`] with an explicit veto band —
    /// the seam the veto-path tests drive (a negative band rejects every
    /// reduced-precision candidate, since rolling MAPE is non-negative).
    fn with_precision_gated(
        models: PowerTimeModels,
        spec: DeviceSpec,
        meta: SnapshotMeta,
        precision: Precision,
        band: f64,
    ) -> Self {
        let engines = match gate_engines(&models, &spec, precision, band) {
            Ok(engines) => engines,
            Err(veto) => {
                obs::global().counter("snapshot.precision_veto").inc();
                obs::log!(
                    Warn,
                    "snapshot: {} engines vetoed ({veto}); serving f64 instead",
                    precision.name()
                );
                PredictEngines::compile(&models, Precision::F64)
            }
        };
        Self {
            version: 0,
            models,
            engines,
            spec,
            meta,
        }
    }

    /// The precision the snapshot actually serves (after any veto).
    pub fn precision(&self) -> Precision {
        self.engines.precision()
    }
}

/// Compiles engines at `precision` and, for reduced-precision modes,
/// runs the accuracy gate. Returns the veto reason on failure.
fn gate_engines(
    models: &PowerTimeModels,
    spec: &DeviceSpec,
    precision: Precision,
    band: f64,
) -> Result<PredictEngines, String> {
    let engines = PredictEngines::compile(models, precision);
    if precision == Precision::F64 {
        // f64 engines are bitwise-identical to the reference by
        // construction; probing them would only dilute the monitors.
        return Ok(engines);
    }
    let freqs = DvfsGrid::for_spec(spec).used();
    let samples = GATE_ACTIVITIES.len() * GATE_ACTIVITIES.len() * freqs.len();
    let config = QualityConfig {
        window: samples,
        warn_mape: GATE_WARN_MAPE,
    };
    let power_mon = obs::quality::monitor_with("precision_power", config);
    let time_mon = obs::quality::monitor_with("precision_time", config);
    for &fp in &GATE_ACTIVITIES {
        for &dram in &GATE_ACTIVITIES {
            let ref_p = models.predict_power_w_batch(spec, fp, dram, &freqs);
            let ref_t = models.predict_time_ratio_batch(spec, fp, dram, &freqs);
            let got_p = engines.predict_power_w_batch(spec, fp, dram, &freqs);
            let got_t = engines.predict_time_ratio_batch(spec, fp, dram, &freqs);
            power_mon.observe_profile(&got_p, &ref_p);
            time_mon.observe_profile(&got_t, &ref_t);
        }
    }
    let (p, t) = (power_mon.stat(), time_mon.stat());
    if p.mape > band || t.mape > band {
        return Err(format!(
            "rolling MAPE vs f64 reference: power {:.2}%, time {:.2}% (band {band}%)",
            p.mape, t.mape
        ));
    }
    Ok(engines)
}

/// How many slots the store cycles through. A reader is only ever
/// delayed if `SLOTS - 1` publishes complete during its (two-instruction)
/// critical section — publishing is rare (retrains, reloads), so readers
/// are wait-free in any realistic schedule.
const SLOTS: usize = 8;

/// A lock-free-for-readers slot of [`ModelSnapshot`] versions.
///
/// Layout: `SLOTS` mutex-protected `Arc` cells plus one atomic
/// generation counter. `publish` writes the snapshot into slot
/// `(gen + 1) % SLOTS` *before* bumping the generation, so a reader that
/// observes generation G always finds a fully initialized snapshot in
/// slot `G % SLOTS`. Readers lock only their target cell, which a
/// publisher never touches until the generation has advanced `SLOTS - 1`
/// more times — reads and writes proceed concurrently without blocking
/// each other.
pub struct ModelStore {
    slots: [Mutex<Option<Arc<ModelSnapshot>>>; SLOTS],
    /// Version id allocator — may run ahead of `generation` while a
    /// publisher is mid-write.
    next_version: AtomicU64,
    /// The *published* generation: only ever points at a populated slot.
    generation: AtomicU64,
}

impl ModelStore {
    /// Creates a store and publishes `initial` as version 1.
    pub fn new(initial: ModelSnapshot) -> Self {
        let store = Self {
            slots: std::array::from_fn(|_| Mutex::new(None)),
            next_version: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        };
        store.publish(initial);
        store
    }

    /// Publishes `snapshot` as the new current version, returning the
    /// version id assigned to it. In-flight readers keep whatever version
    /// they already loaded; new `load()` calls see this one.
    pub fn publish(&self, mut snapshot: ModelSnapshot) -> u64 {
        // Allocate the id first; `generation` is only advanced *after*
        // the slot holds the snapshot, so readers can never chase a
        // version whose slot is still empty. Competing publishers get
        // distinct ids and `fetch_max` lets them complete in any order.
        let gen = self.next_version.fetch_add(1, Ordering::AcqRel) + 1;
        snapshot.version = gen;
        let precision = snapshot.precision();
        let arc = Arc::new(snapshot);
        *self.slots[(gen % SLOTS as u64) as usize].lock() = Some(arc);
        self.generation.fetch_max(gen, Ordering::AcqRel);
        obs::global().counter("snapshot.published").inc();
        obs::global().gauge("snapshot.version").set(gen as f64);
        obs::global()
            .gauge("snapshot.precision")
            .set(precision.code() as f64);
        gen
    }

    /// The current snapshot. Wait-free for readers in the steady state:
    /// one atomic load plus an uncontended mutex around an `Arc` clone.
    pub fn load(&self) -> Arc<ModelSnapshot> {
        loop {
            let gen = self.generation.load(Ordering::Acquire);
            let slot = self.slots[(gen % SLOTS as u64) as usize].lock();
            if let Some(arc) = slot.as_ref() {
                // The slot can only hold a *newer* snapshot than the
                // generation we read (a publisher lapped us SLOTS times
                // mid-read) — never an older or torn one. Either way it
                // is a fully published snapshot; return it.
                return Arc::clone(arc);
            }
            // Unreachable after `new` (generation >= 1 implies its slot
            // is populated), but loop rather than panic if a caller
            // races construction in the future.
            drop(slot);
            std::hint::spin_loop();
        }
    }

    /// The current version id without touching any slot — cheap enough
    /// for a per-request "has the model changed?" check.
    pub fn current_version(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Whether a publish has landed since `version` was current: the
    /// serve workers call this once per batch to decide when to rebind
    /// their predictor (and drop their per-snapshot serialized-reply
    /// cache) — one atomic load, no slot lock.
    pub fn changed_since(&self, version: u64) -> bool {
        self.current_version() != version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use gpu_model::{NoiseModel, SignatureBuilder};

    fn tiny_models(spec: &DeviceSpec, seed_freq_stride: usize) -> PowerTimeModels {
        let nm = NoiseModel::default_bench();
        let sigs = [
            SignatureBuilder::new("c").flops(2e13).bytes(2e11).build(),
            SignatureBuilder::new("m").flops(2e11).bytes(2e13).build(),
            SignatureBuilder::new("x").flops(8e12).bytes(3e12).build(),
        ];
        let grid = gpu_model::DvfsGrid::for_spec(spec);
        let mut samples = Vec::new();
        for sig in &sigs {
            for &f in grid.used().iter().step_by(seed_freq_stride) {
                samples.push(gpu_model::sample::measure(spec, sig, f, 0, &nm));
            }
            samples.push(gpu_model::sample::measure(
                spec,
                sig,
                spec.max_core_mhz,
                0,
                &nm,
            ));
        }
        PowerTimeModels::train(&Dataset::from_samples(spec, &samples).unwrap())
    }

    fn snapshot(label: &str, stride: usize) -> ModelSnapshot {
        let spec = DeviceSpec::ga100();
        let models = tiny_models(&spec, stride);
        ModelSnapshot::new(
            models,
            spec,
            SnapshotMeta {
                label: label.into(),
                dataset_rows: 42,
                train_seconds: 0.0,
            },
        )
    }

    #[test]
    fn reduced_precision_passes_the_gate_on_real_models() {
        let spec = DeviceSpec::ga100();
        let models = tiny_models(&spec, 8);
        for precision in [Precision::F32, Precision::Bf16] {
            let snap = ModelSnapshot::with_precision(
                models.clone(),
                spec.clone(),
                SnapshotMeta::default(),
                precision,
            );
            // Well-trained paper-topology networks sit far inside the
            // band in both reduced modes, so the gate must promote.
            assert_eq!(snap.precision(), precision);
        }
        // The gate fed the precision monitors; their MAPE must be in band.
        for stat in obs::quality::snapshot() {
            if stat.model.starts_with("precision_") {
                assert!(stat.mape <= 12.0, "{}: {:.2}%", stat.model, stat.mape);
            }
        }
    }

    #[test]
    fn gate_vetoes_a_candidate_outside_the_band() {
        // Drive the gate through the band seam: a band below zero rejects
        // every candidate (rolling MAPE is non-negative), exercising the
        // full veto path — probe, reject, log, fall back to f64.
        let spec = DeviceSpec::ga100();
        let models = tiny_models(&spec, 8);
        let snap = ModelSnapshot::with_precision_gated(
            models,
            spec,
            SnapshotMeta::default(),
            Precision::Bf16,
            -1.0,
        );
        assert_eq!(snap.precision(), Precision::F64);
    }

    #[test]
    fn f64_snapshot_skips_the_gate_and_serves_f64() {
        let spec = DeviceSpec::ga100();
        let snap = snapshot("v1", 8);
        assert_eq!(snap.precision(), Precision::F64);
        let _ = spec;
    }

    #[test]
    fn publish_assigns_monotonic_versions() {
        let store = ModelStore::new(snapshot("v1", 8));
        assert_eq!(store.current_version(), 1);
        assert_eq!(store.load().version, 1);
        assert_eq!(store.load().meta.label, "v1");
        let v2 = store.publish(snapshot("v2", 6));
        assert_eq!(v2, 2);
        assert_eq!(store.current_version(), 2);
        assert_eq!(store.load().meta.label, "v2");
    }

    #[test]
    fn readers_keep_their_version_across_swaps() {
        let store = ModelStore::new(snapshot("v1", 8));
        let spec = DeviceSpec::ga100();
        let held = store.load();
        let before = held.models.predict_power_w(&spec, 0.6, 0.3, 1005.0);
        // Swap more times than there are slots: the held Arc must stay
        // valid and bitwise stable throughout.
        for i in 0..(SLOTS + 3) {
            store.publish(snapshot(&format!("v{}", i + 2), 6));
        }
        assert_eq!(held.version, 1);
        let after = held.models.predict_power_w(&spec, 0.6, 0.3, 1005.0);
        assert_eq!(before.to_bits(), after.to_bits());
        assert_eq!(store.load().version, (SLOTS + 4) as u64);
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_snapshot() {
        let store = std::sync::Arc::new(ModelStore::new(snapshot("v1", 8)));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let store = std::sync::Arc::clone(&store);
                    let stop = std::sync::Arc::clone(&stop);
                    scope.spawn(move || {
                        let mut last = 0u64;
                        let mut loads = 0u64;
                        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                            let snap = store.load();
                            // Versions move forward only, and the version
                            // field always matches a published snapshot.
                            assert!(snap.version >= last, "version went backwards");
                            assert!(snap.version >= 1);
                            last = snap.version;
                            loads += 1;
                        }
                        loads
                    })
                })
                .collect();
            // Publisher: a handful of swaps while readers spin. Reuse two
            // prebuilt model sets — the point is the swap machinery, not
            // training time.
            let a = snapshot("a", 6);
            for i in 0..20 {
                let next = ModelSnapshot::new(a.models.clone(), a.spec.clone(), a.meta.clone());
                store.publish(next);
                if i % 5 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            for r in readers {
                assert!(r.join().expect("reader panicked") > 0);
            }
        });
        assert_eq!(store.current_version(), 21);
    }
}
