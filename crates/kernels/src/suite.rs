//! The training benchmark suite (paper Table 2).

use crate::accel::*;
use crate::micro::{Dgemm, Stream};
use crate::workload::Kernel;
use gpu_model::{DeviceSpec, WorkloadSignature};
use rayon::prelude::*;

/// The 21 training benchmarks: DGEMM, STREAM and the 19 SPEC ACCEL
/// analogues, in the paper's Table 2 order.
pub fn training_suite() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Tpacf::default()),
        Box::new(Stencil::default()),
        Box::new(Lbm::default()),
        Box::new(Fft::default()),
        Box::new(Spmv::default()),
        Box::new(Mriq::default()),
        Box::new(Histo::default()),
        Box::new(Bfs::default()),
        Box::new(Cutcp::default()),
        Box::new(Kmeans::default()),
        Box::new(Lavamd::default()),
        Box::new(Cfd::default()),
        Box::new(Nw::default()),
        Box::new(Hotspot::default()),
        Box::new(Lud::default()),
        Box::new(Ge::default()),
        Box::new(Srad::default()),
        Box::new(Heartwall::default()),
        Box::new(Bplustree::default()),
        Box::new(Dgemm::default()),
        Box::new(Stream::default()),
    ]
}

/// Names of the SPEC ACCEL members of the suite (Table 2, first row).
pub fn spec_accel_names() -> Vec<&'static str> {
    vec![
        "TPACF",
        "STENCIL",
        "LBM",
        "FFT",
        "SPMV",
        "MRIQ",
        "HISTO",
        "BFS",
        "CUTCP",
        "KMEANS",
        "LAVAMD",
        "CFD",
        "NW",
        "HOTSPOT",
        "LUD",
        "GE",
        "SRAD",
        "HEARTWALL",
        "BPLUSTREE",
    ]
}

/// Derives the signatures of the whole suite on `spec`, running every
/// instrumented kernel (in parallel across benchmarks).
pub fn training_signatures(spec: &DeviceSpec) -> Vec<WorkloadSignature> {
    let suite = training_suite();
    suite.par_iter().map(|k| k.signature(spec)).collect()
}

/// Renders the paper's Table 2 rows.
pub fn table2_rows() -> Vec<(&'static str, String)> {
    vec![
        ("SPEC ACCEL [Training]", spec_accel_names().join(", ")),
        ("Micro-Benchmarks [Training]", "DGEMM, STREAM".to_string()),
        (
            "Real-world [Evaluation]",
            "LAMMPS, NAMD, GROMACS, LSTM, BERT, ResNet50".to_string(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_21_benchmarks() {
        assert_eq!(training_suite().len(), 21);
        assert_eq!(spec_accel_names().len(), 19);
    }

    #[test]
    fn suite_names_are_unique() {
        let mut names: Vec<&str> = training_suite().iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn all_profiles_validate() {
        for k in training_suite() {
            k.profile()
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
        }
    }

    #[test]
    fn signatures_span_the_activity_plane() {
        let spec = DeviceSpec::ga100();
        let sigs = training_signatures(&spec);
        assert_eq!(sigs.len(), 21);
        let mut fp_lo = f64::INFINITY;
        let mut fp_hi: f64 = 0.0;
        let mut dram_lo = f64::INFINITY;
        let mut dram_hi: f64 = 0.0;
        for sig in &sigs {
            let (fp, dram) = gpu_model::model::activities(&spec, sig, spec.max_core_mhz);
            fp_lo = fp_lo.min(fp);
            fp_hi = fp_hi.max(fp);
            dram_lo = dram_lo.min(dram);
            dram_hi = dram_hi.max(dram);
        }
        // The suite must cover low and high activity in both dimensions for
        // the models to interpolate unseen applications.
        assert!(
            fp_lo < 0.15 && fp_hi > 0.7,
            "fp coverage {fp_lo:.2}..{fp_hi:.2}"
        );
        assert!(
            dram_lo < 0.2 && dram_hi > 0.6,
            "dram coverage {dram_lo:.2}..{dram_hi:.2}"
        );
    }

    #[test]
    fn signature_runtimes_match_profile_targets() {
        let spec = DeviceSpec::ga100();
        for k in training_suite() {
            let sig = k.signature(&spec);
            let t = gpu_model::model::exec_time(&spec, &sig, spec.max_core_mhz);
            let target = k.profile().target_seconds;
            assert!(
                (t - target).abs() / target < 0.25,
                "{}: runtime {t:.1}s vs target {target}s",
                k.name()
            );
        }
    }

    #[test]
    fn table2_lists_all_categories() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].1.contains("TPACF"));
        assert!(rows[2].1.contains("ResNet50"));
    }
}
