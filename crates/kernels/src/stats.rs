//! Exact operation counts from an instrumented kernel run.

use serde::{Deserialize, Serialize};

/// The result of executing one instrumented kernel run.
///
/// `flops` and `bytes` are exact analytic counts derived from the loop trip
/// counts the kernel actually executed (not estimates); `checksum` is a
/// kernel-specific reduction over the output used by correctness tests, and
/// `elapsed_s` is host wall-clock (informational only — GPU-side timing
/// comes from the simulator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes of main-memory traffic the algorithm implies.
    pub bytes: f64,
    /// Checksum of the output for correctness verification.
    pub checksum: f64,
    /// Host wall-clock seconds for the run.
    pub elapsed_s: f64,
}

impl KernelStats {
    /// Creates stats with the given counts and checksum.
    pub fn new(flops: f64, bytes: f64, checksum: f64, elapsed_s: f64) -> Self {
        Self {
            flops,
            bytes,
            checksum,
            elapsed_s,
        }
    }

    /// Arithmetic intensity, FLOP/byte.
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }

    /// Merges counts from another run (summing work, keeping the later
    /// checksum).
    pub fn merge(&mut self, other: &KernelStats) {
        self.flops += other.flops;
        self.bytes += other.bytes;
        self.checksum = other.checksum;
        self.elapsed_s += other.elapsed_s;
    }
}

/// Measures wall-clock around `f`, producing [`KernelStats`] from the
/// returned `(flops, bytes, checksum)` triple.
pub fn timed(f: impl FnOnce() -> (f64, f64, f64)) -> KernelStats {
    let start = std::time::Instant::now();
    let (flops, bytes, checksum) = f();
    KernelStats::new(flops, bytes, checksum, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_computes_ratio() {
        let s = KernelStats::new(100.0, 50.0, 0.0, 0.1);
        assert_eq!(s.intensity(), 2.0);
    }

    #[test]
    fn intensity_infinite_for_zero_bytes() {
        let s = KernelStats::new(100.0, 0.0, 0.0, 0.1);
        assert!(s.intensity().is_infinite());
    }

    #[test]
    fn merge_sums_work() {
        let mut a = KernelStats::new(10.0, 20.0, 1.0, 0.5);
        a.merge(&KernelStats::new(5.0, 5.0, 2.0, 0.5));
        assert_eq!(a.flops, 15.0);
        assert_eq!(a.bytes, 25.0);
        assert_eq!(a.checksum, 2.0);
        assert_eq!(a.elapsed_s, 1.0);
    }

    #[test]
    fn timed_captures_elapsed() {
        let s = timed(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            (1.0, 2.0, 3.0)
        });
        assert!(s.elapsed_s >= 0.004);
        assert_eq!(s.flops, 1.0);
    }
}
