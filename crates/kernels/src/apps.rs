//! The six real evaluation applications (paper Table 2, "Real-world").
//!
//! Each application is a multi-phase [`PhasedWorkload`] calibrated against
//! the behaviour the paper reports on the A100. The central modelling
//! device is the **roofline crossover**: a kernel whose arithmetic
//! intensity sits just below the device ridge point is memory bound at the
//! default clock but becomes compute bound once the core clock drops below
//! its crossover ("knee") frequency. Above the knee its runtime barely
//! reacts to DVFS while power falls steeply — which is exactly why the
//! paper's EDP/ED²P optima sit at app-specific interior frequencies
//! (Table 4):
//!
//! * **LAMMPS** / **NAMD** — force kernels with knees near 1200 MHz: a few
//!   percent performance loss buys ~30 % energy (paper Table 5).
//! * **GROMACS** — low knee plus a large DVFS-insensitive host/constraint
//!   fraction: its time barely reacts to frequency, which is what trips up
//!   the time model (88.7 % accuracy, Figure 8c).
//! * **LSTM** — low-utilization TensorFlow layers with a knee near
//!   800 MHz: deep savings at very low frequency (M-ED²P 810 MHz).
//! * **BERT** — attention GEMMs with a knee near 1150 MHz.
//! * **ResNet50** — convolutions far above the ridge: compute bound at
//!   every frequency, the paper's outlier where ED²P keeps f_max while
//!   EDP pays > 30 % performance for its savings.
//!
//! Work volumes are sized against A100 peak rates so runtimes land in the
//! tens of seconds; the same signatures run (slower) on the GV100 profile,
//! as in the paper's portability study.

use gpu_model::{DeviceSpec, Phase, PhasedWorkload, SignatureBuilder, WorkloadSignature};

/// Compute-roofline efficiency assumed for app kernels. Real applications
/// run far below peak when compute bound (divergence, mixed instruction
/// mix); this also places their activity signatures inside the region the
/// training suite covers.
const APP_KAPPA_C: f64 = 0.45;

/// Builds a phase whose compute/memory crossover sits at `knee_mhz` on the
/// A100 and which runs for `seconds` at the default clock.
///
/// Above the knee the phase is memory bound (time ~flat in f); below it,
/// compute bound (time ~1/f).
fn ridge_phase(
    name: &str,
    seconds: f64,
    knee_mhz: f64,
    fp64_ratio: f64,
    kappa_m: f64,
    occupancy: f64,
) -> WorkloadSignature {
    let a100 = DeviceSpec::ga100();
    // Memory side fixes the runtime at the default clock.
    let bytes = seconds * kappa_m * a100.peak_bw_gbs * 1e9;
    // Compute side pins the crossover: t_comp(knee) == t_mem(knee).
    let bw_at_knee =
        kappa_m * a100.peak_bw_gbs * 1e9 * gpu_model::model::bw_factor(&a100, knee_mhz);
    let flops_rate_at_knee =
        a100.peak_gflops_for_mix(fp64_ratio) * 1e9 * APP_KAPPA_C * (knee_mhz / a100.max_core_mhz);
    let ai = flops_rate_at_knee / bw_at_knee;
    SignatureBuilder::new(name)
        .flops(bytes * ai)
        .bytes(bytes)
        .kappa_compute(APP_KAPPA_C)
        .kappa_memory(kappa_m)
        .fp64_ratio(fp64_ratio)
        .sm_occupancy(occupancy)
        .build()
}

/// Builds a strongly compute-bound phase (`ai` far above the ridge) sized
/// to run `seconds` at the A100 default clock.
fn compute_phase(
    name: &str,
    seconds: f64,
    kappa_c: f64,
    fp64_ratio: f64,
    ai: f64,
    occupancy: f64,
) -> WorkloadSignature {
    let a100 = DeviceSpec::ga100();
    let flops = seconds * kappa_c * a100.peak_gflops_for_mix(fp64_ratio) * 1e9;
    SignatureBuilder::new(name)
        .flops(flops)
        .bytes(flops / ai)
        .kappa_compute(kappa_c)
        .kappa_memory(0.70)
        .fp64_ratio(fp64_ratio)
        .sm_occupancy(occupancy)
        .build()
}

/// Builds a pure host-side phase of `seconds` (DVFS insensitive).
fn host_phase(name: &str, seconds: f64) -> WorkloadSignature {
    SignatureBuilder::new(name)
        .flops(1.0)
        .bytes(1.0)
        .overhead_s(seconds)
        .kappa_compute(0.5)
        .kappa_memory(0.5)
        .sm_occupancy(0.05)
        .build()
}

fn phases(list: Vec<WorkloadSignature>) -> Vec<Phase> {
    list.into_iter()
        .map(|signature| Phase {
            signature,
            repeats: 1.0,
        })
        .collect()
}

/// LAMMPS — Lennard-Jones 3D melt (paper Section 5).
pub fn lammps() -> PhasedWorkload {
    PhasedWorkload::new(
        "LAMMPS",
        phases(vec![
            ridge_phase("lammps/pair_lj", 18.0, 1220.0, 1.0, 0.78, 0.55),
            compute_phase("lammps/ewald", 3.0, 0.70, 1.0, 40.0, 0.50),
            host_phase("lammps/comm", 1.2),
        ]),
    )
}

/// NAMD — ApoA1 92k-atom biomolecular simulation.
pub fn namd() -> PhasedWorkload {
    PhasedWorkload::new(
        "NAMD",
        phases(vec![
            ridge_phase("namd/nonbonded", 16.0, 1230.0, 1.0, 0.75, 0.55),
            compute_phase("namd/bonded", 2.5, 0.65, 1.0, 35.0, 0.45),
            host_phase("namd/integrate", 1.8),
        ]),
    )
}

/// GROMACS — lysozyme-in-water simulation; time is largely DVFS
/// insensitive (paper Figure 8c discussion).
pub fn gromacs() -> PhasedWorkload {
    PhasedWorkload::new(
        "GROMACS",
        phases(vec![
            ridge_phase("gromacs/nb_kernel", 8.0, 1080.0, 0.0, 0.74, 0.60),
            ridge_phase("gromacs/pme_spread", 4.0, 950.0, 0.0, 0.75, 0.70),
            host_phase("gromacs/constraints", 10.0),
        ]),
    )
}

/// LSTM — TensorFlow sentiment classifier; low GPU utilization.
pub fn lstm() -> PhasedWorkload {
    PhasedWorkload::new(
        "LSTM",
        phases(vec![
            ridge_phase("lstm/recurrent", 12.0, 850.0, 0.0, 0.45, 0.25),
            host_phase("lstm/input_pipeline", 4.0),
        ]),
    )
}

/// BERT — transformer fine-tuning on the movie-review dataset.
pub fn bert() -> PhasedWorkload {
    PhasedWorkload::new(
        "BERT",
        phases(vec![
            ridge_phase("bert/attention_gemm", 16.0, 1160.0, 0.0, 0.70, 0.60),
            compute_phase("bert/ffn", 2.5, 0.70, 0.0, 90.0, 0.60),
            host_phase("bert/tokenize", 1.8),
        ]),
    )
}

/// ResNet50 — CIFAR-10 training; convolution dominated, the paper's
/// frequency-sensitive outlier.
pub fn resnet50() -> PhasedWorkload {
    PhasedWorkload::new(
        "ResNet50",
        phases(vec![
            compute_phase("resnet/conv", 20.0, 0.85, 0.0, 100.0, 0.65),
            ridge_phase("resnet/bn_relu", 2.0, 1300.0, 0.0, 0.70, 0.70),
            host_phase("resnet/dataloader", 0.6),
        ]),
    )
}

/// All six evaluation applications in the paper's order.
pub fn evaluation_apps() -> Vec<PhasedWorkload> {
    vec![lammps(), namd(), gromacs(), lstm(), bert(), resnet50()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_apps_with_paper_names() {
        let apps = evaluation_apps();
        let names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            ["LAMMPS", "NAMD", "GROMACS", "LSTM", "BERT", "ResNet50"]
        );
    }

    #[test]
    fn runtimes_are_tens_of_seconds_on_a100() {
        let spec = DeviceSpec::ga100();
        for app in evaluation_apps() {
            let t = app.exec_time(&spec, spec.max_core_mhz);
            assert!((10.0..=60.0).contains(&t), "{}: {t:.1}s", app.name);
        }
    }

    #[test]
    fn ridge_phase_knee_is_where_requested() {
        let spec = DeviceSpec::ga100();
        let sig = ridge_phase("knee-test", 10.0, 1100.0, 1.0, 0.8, 0.5);
        // Just above the knee: memory bound, mild slowdown from fmax.
        let t_max = gpu_model::model::exec_time(&spec, &sig, 1410.0);
        let t_above = gpu_model::model::exec_time(&spec, &sig, 1170.0);
        assert!(t_above / t_max < 1.04, "above knee: {:.3}", t_above / t_max);
        // Well below the knee: compute bound, ~1/f scaling.
        let t_900 = gpu_model::model::exec_time(&spec, &sig, 900.0);
        let t_700 = gpu_model::model::exec_time(&spec, &sig, 700.0);
        assert!(
            (t_700 / t_900 - 900.0 / 700.0).abs() < 0.05,
            "below knee: {:.3}",
            t_700 / t_900
        );
    }

    #[test]
    fn lammps_time_mildly_sensitive_at_its_knee() {
        let spec = DeviceSpec::ga100();
        let l = lammps();
        let t_max = l.exec_time(&spec, 1410.0);
        let t_1215 = l.exec_time(&spec, 1215.0);
        let slowdown = t_1215 / t_max - 1.0;
        assert!(
            (0.0..=0.08).contains(&slowdown),
            "LAMMPS at 1215 MHz slowed {:.1}%",
            slowdown * 100.0
        );
    }

    #[test]
    fn gromacs_time_is_dvfs_insensitive() {
        let spec = DeviceSpec::ga100();
        let g = gromacs();
        let t_max = g.exec_time(&spec, 1410.0);
        let t_mid = g.exec_time(&spec, 1110.0);
        assert!(
            t_mid / t_max < 1.05,
            "GROMACS slowed {:.1}% from 1410 to 1110 MHz",
            (t_mid / t_max - 1.0) * 100.0
        );
    }

    #[test]
    fn resnet_time_is_steeply_dvfs_sensitive() {
        let spec = DeviceSpec::ga100();
        let r = resnet50();
        let t_max = r.exec_time(&spec, 1410.0);
        let t_low = r.exec_time(&spec, 795.0);
        assert!(
            t_low / t_max > 1.5,
            "ResNet50 only slowed {:.2}x at 795 MHz",
            t_low / t_max
        );
    }

    #[test]
    fn lstm_draws_low_power() {
        let spec = DeviceSpec::ga100();
        let p = lstm().power(&spec, spec.max_core_mhz);
        assert!(
            p / spec.tdp_w < 0.5,
            "LSTM draws {:.2} of TDP, expected low utilization",
            p / spec.tdp_w
        );
    }

    #[test]
    fn md_apps_draw_substantial_power() {
        let spec = DeviceSpec::ga100();
        for app in [lammps(), namd()] {
            let p = app.power(&spec, spec.max_core_mhz);
            assert!(
                p / spec.tdp_w > 0.55,
                "{} draws only {:.2} of TDP",
                app.name,
                p / spec.tdp_w
            );
        }
    }

    #[test]
    fn gromacs_has_large_overhead_fraction() {
        let spec = DeviceSpec::ga100();
        let frac = gromacs().overhead_fraction(&spec, spec.max_core_mhz);
        assert!(frac > 0.35, "GROMACS overhead fraction {frac:.2}");
    }

    #[test]
    fn resnet_has_tiny_overhead_fraction() {
        let spec = DeviceSpec::ga100();
        let frac = resnet50().overhead_fraction(&spec, spec.max_core_mhz);
        assert!(frac < 0.05, "ResNet50 overhead fraction {frac:.2}");
    }

    #[test]
    fn apps_also_run_on_gv100() {
        let spec = DeviceSpec::gv100();
        for app in evaluation_apps() {
            let t = app.exec_time(&spec, spec.max_core_mhz);
            // Slower than on the A100 but still finite and sensible.
            assert!(t.is_finite() && t > 5.0, "{}: {t}", app.name);
            let p = app.power(&spec, spec.max_core_mhz);
            assert!(
                p > spec.idle_w && p <= spec.tdp_w * 1.01,
                "{}: {p} W",
                app.name
            );
        }
    }

    #[test]
    fn energy_at_knee_saves_substantially() {
        // The headline behaviour: dropping to each MD app's knee saves
        // 20%+ energy for a small time cost.
        let spec = DeviceSpec::ga100();
        for (app, knee) in [(lammps(), 1215.0), (namd(), 1230.0), (bert(), 1155.0)] {
            let e_max = app.energy(&spec, spec.max_core_mhz);
            let e_knee = app.energy(&spec, knee);
            let saving = 1.0 - e_knee / e_max;
            assert!(
                saving > 0.12,
                "{}: only {:.1}% energy saved at its knee",
                app.name,
                saving * 100.0
            );
        }
    }

    #[test]
    fn low_frequencies_are_never_optimal() {
        let spec = DeviceSpec::ga100();
        let grid = gpu_model::DvfsGrid::for_spec(&spec);
        for app in evaluation_apps() {
            let used = grid.used();
            let energies: Vec<f64> = used.iter().map(|&f| app.energy(&spec, f)).collect();
            let min = energies.iter().copied().fold(f64::INFINITY, f64::min);
            assert!(
                energies[0] > min,
                "{}: 510 MHz should not be optimal",
                app.name
            );
        }
    }
}
