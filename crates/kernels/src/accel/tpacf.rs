//! TPACF — two-point angular correlation function.
//!
//! Computes the histogram of angular separations between points on the unit
//! sphere (the astronomy workload in SPEC ACCEL). All-pairs dot products
//! binned by angle, parallel over the outer index.

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// Histogram bins over [0, pi].
const BINS: usize = 64;

/// TPACF benchmark.
#[derive(Debug, Clone)]
pub struct Tpacf {
    /// Point count at scale 1.0.
    pub points: usize,
}

impl Default for Tpacf {
    fn default() -> Self {
        Self { points: 1500 }
    }
}

/// Deterministic pseudo-random unit vectors (split-mix style hash).
fn unit_vectors(n: usize) -> Vec<[f64; 3]> {
    (0..n)
        .map(|i| {
            let mut z = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(1);
            let mut next = || {
                z ^= z >> 30;
                z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^= z >> 27;
                (z >> 11) as f64 / (1u64 << 53) as f64
            };
            let cos_t = 2.0 * next() - 1.0;
            let sin_t = (1.0 - cos_t * cos_t).sqrt();
            let phi = 2.0 * std::f64::consts::PI * next();
            [sin_t * phi.cos(), sin_t * phi.sin(), cos_t]
        })
        .collect()
}

impl Tpacf {
    fn histogram(pts: &[[f64; 3]]) -> Vec<u64> {
        let n = pts.len();
        pts.par_iter()
            .enumerate()
            .map(|(i, a)| {
                let mut local = vec![0u64; BINS];
                for b in &pts[i + 1..] {
                    let dot = (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]).clamp(-1.0, 1.0);
                    let angle = dot.acos();
                    let bin = ((angle / std::f64::consts::PI) * BINS as f64) as usize;
                    local[bin.min(BINS - 1)] += 1;
                }
                (local, n - i - 1)
            })
            .map(|(local, _)| local)
            .reduce(
                || vec![0u64; BINS],
                |mut acc, local| {
                    for (a, l) in acc.iter_mut().zip(&local) {
                        *a += l;
                    }
                    acc
                },
            )
    }
}

impl Kernel for Tpacf {
    fn name(&self) -> &'static str {
        "TPACF"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.points as f64 * scale.sqrt()).round() as usize).max(16);
        timed(|| {
            let pts = unit_vectors(n);
            let hist = Self::histogram(&pts);
            let pairs = (n * (n - 1) / 2) as f64;
            // dot (5) + clamp/acos (~8) + binning (2) per pair.
            let flops = 15.0 * pairs;
            // Points stream from cache-resident tiles; each point read about
            // sqrt(pairs)/tile times from DRAM on a GPU — model one pass per
            // 64-point tile.
            let bytes = 24.0 * (n as f64) * (n as f64 / 64.0) + 8.0 * BINS as f64;
            let checksum = hist.iter().map(|&c| c as f64).sum::<f64>();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.55,
            kappa_memory: 0.50,
            fp64_ratio: 1.0,
            sm_occupancy: 0.60,
            pcie_tx_mbs: 30.0,
            pcie_rx_mbs: 10.0,
            overhead_frac: 0.04,
            target_seconds: 22.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_all_pairs() {
        let n = 200;
        let pts = unit_vectors(n);
        let hist = Tpacf::histogram(&pts);
        let total: u64 = hist.iter().sum();
        assert_eq!(total as usize, n * (n - 1) / 2);
    }

    #[test]
    fn vectors_are_unit_length() {
        for v in unit_vectors(100) {
            let norm = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_sphere_spreads_over_bins() {
        let pts = unit_vectors(400);
        let hist = Tpacf::histogram(&pts);
        let nonzero = hist.iter().filter(|&&c| c > 0).count();
        assert!(nonzero > BINS / 2, "only {nonzero} bins hit");
    }

    #[test]
    fn run_reports_pair_flops() {
        let k = Tpacf { points: 100 };
        let s = k.run(1.0);
        assert_eq!(s.flops, 15.0 * (100.0 * 99.0 / 2.0));
        assert!(s.checksum > 0.0);
    }
}
