//! GE — Gaussian elimination to upper-triangular form (with row pivoting).

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// Gaussian-elimination benchmark.
#[derive(Debug, Clone)]
pub struct Ge {
    /// System size at scale 1.0.
    pub n: usize,
}

impl Default for Ge {
    fn default() -> Self {
        Self { n: 160 }
    }
}

impl Ge {
    fn system(n: usize) -> (Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..n * n)
            .map(|i| {
                let (r, c) = (i / n, i % n);
                let h = (i as u64).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7);
                let v = ((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5;
                if r == c {
                    v + n as f64
                } else {
                    v
                }
            })
            .collect();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        (a, b)
    }

    /// Forward elimination with partial pivoting; returns FLOPs.
    fn eliminate(a: &mut [f64], b: &mut [f64], n: usize) -> f64 {
        let mut flops = 0.0;
        for k in 0..n {
            // Partial pivot.
            let pivot_row = (k..n)
                .max_by(|&r1, &r2| {
                    a[r1 * n + k]
                        .abs()
                        .partial_cmp(&a[r2 * n + k].abs())
                        .expect("finite")
                })
                .expect("non-empty range");
            if pivot_row != k {
                for c in 0..n {
                    a.swap(k * n + c, pivot_row * n + c);
                }
                b.swap(k, pivot_row);
            }
            let pivot = a[k * n + k];
            assert!(pivot.abs() > 1e-12, "singular system at {k}");
            let (upper, lower) = a.split_at_mut((k + 1) * n);
            let prow = &upper[k * n..(k + 1) * n];
            let bk = b[k];
            let b_tail = &mut b[k + 1..];
            lower
                .par_chunks_mut(n)
                .zip(b_tail.par_iter_mut())
                .for_each(|(row, brow)| {
                    let factor = row[k] / pivot;
                    for c in k..n {
                        row[c] -= factor * prow[c];
                    }
                    *brow -= factor * bk;
                });
            flops += ((n - k - 1) * (2 * (n - k) + 3)) as f64;
        }
        flops
    }

    /// Back substitution for the solution vector.
    fn back_substitute(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut acc = b[k];
            for c in k + 1..n {
                acc -= a[k * n + c] * x[c];
            }
            x[k] = acc / a[k * n + k];
        }
        x
    }
}

impl Kernel for Ge {
    fn name(&self) -> &'static str {
        "GE"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.n as f64 * scale.cbrt()).round() as usize).max(8);
        timed(|| {
            let (mut a, mut b) = Self::system(n);
            let flops = Self::eliminate(&mut a, &mut b, n);
            let x = Self::back_substitute(&a, &b, n);
            let nf = n as f64;
            let bytes = 8.0 * nf * nf * (nf / 32.0) / 3.0;
            let checksum: f64 = x.iter().sum();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.55,
            kappa_memory: 0.60,
            fp64_ratio: 1.0,
            sm_occupancy: 0.55,
            pcie_tx_mbs: 40.0,
            pcie_rx_mbs: 40.0,
            overhead_frac: 0.05,
            target_seconds: 16.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_2x2_system() {
        // x + y = 3; 2x - y = 0 => x = 1, y = 2.
        let mut a = vec![1.0, 1.0, 2.0, -1.0];
        let mut b = vec![3.0, 0.0];
        Ge::eliminate(&mut a, &mut b, 2);
        let x = Ge::back_substitute(&a, &b, 2);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_small_for_random_system() {
        let n = 40;
        let (a0, b0) = Ge::system(n);
        let mut a = a0.clone();
        let mut b = b0.clone();
        Ge::eliminate(&mut a, &mut b, n);
        let x = Ge::back_substitute(&a, &b, n);
        // Check A0 x = b0.
        for r in 0..n {
            let ax: f64 = (0..n).map(|c| a0[r * n + c] * x[c]).sum();
            assert!((ax - b0[r]).abs() < 1e-8, "row {r}: {ax} vs {}", b0[r]);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Without pivoting this system would divide by zero.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 3.0];
        Ge::eliminate(&mut a, &mut b, 2);
        let x = Ge::back_substitute(&a, &b, 2);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn elimination_produces_upper_triangular() {
        let n = 10;
        let (mut a, mut b) = Ge::system(n);
        Ge::eliminate(&mut a, &mut b, n);
        for r in 1..n {
            for c in 0..r {
                assert!(a[r * n + c].abs() < 1e-9, "a[{r}][{c}] = {}", a[r * n + c]);
            }
        }
    }
}
