//! BFS — level-synchronous breadth-first search (latency/memory bound).

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;
use std::sync::atomic::{AtomicI32, Ordering};

/// A graph in CSR adjacency form.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Offsets into `edges`, length `n + 1`.
    pub offsets: Vec<usize>,
    /// Flattened adjacency lists.
    pub edges: Vec<u32>,
}

impl Graph {
    /// Builds a deterministic pseudo-random graph with `n` nodes and about
    /// `deg` out-edges per node, guaranteed weakly connected via a ring.
    pub fn synthetic(n: usize, deg: usize) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(n * deg);
        offsets.push(0);
        for v in 0..n {
            edges.push(((v + 1) % n) as u32); // ring edge keeps it connected
            for k in 1..deg {
                let h = ((v * deg + k) as u64).wrapping_mul(0xD130_2B97_9AF2_AE4D);
                edges.push((h % n as u64) as u32);
            }
            offsets.push(edges.len());
        }
        Self { offsets, edges }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Level-synchronous parallel BFS from `src`; returns per-node levels
    /// (-1 for unreachable) and the number of edges relaxed.
    pub fn bfs(&self, src: u32) -> (Vec<i32>, u64) {
        let n = self.nodes();
        let levels: Vec<AtomicI32> = (0..n).map(|_| AtomicI32::new(-1)).collect();
        levels[src as usize].store(0, Ordering::Relaxed);
        let mut frontier = vec![src];
        let mut level = 0i32;
        let mut relaxed = 0u64;
        while !frontier.is_empty() {
            relaxed += frontier
                .iter()
                .map(|&v| (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u64)
                .sum::<u64>();
            let next: Vec<u32> = frontier
                .par_iter()
                .flat_map_iter(|&v| {
                    let lo = self.offsets[v as usize];
                    let hi = self.offsets[v as usize + 1];
                    self.edges[lo..hi].iter().copied().filter(|&w| {
                        levels[w as usize]
                            .compare_exchange(-1, level + 1, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                    })
                })
                .collect();
            frontier = next;
            level += 1;
        }
        (
            levels.into_iter().map(|a| a.into_inner()).collect(),
            relaxed,
        )
    }
}

/// BFS benchmark.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// Node count at scale 1.0.
    pub nodes: usize,
    /// Mean out-degree.
    pub degree: usize,
}

impl Default for Bfs {
    fn default() -> Self {
        Self {
            nodes: 100_000,
            degree: 8,
        }
    }
}

impl Kernel for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.nodes as f64 * scale).round() as usize).max(64);
        timed(|| {
            let g = Graph::synthetic(n, self.degree);
            let (levels, relaxed) = g.bfs(0);
            let flops = 0.05 * relaxed as f64; // BFS is essentially FLOP-free
                                               // Edge scan (4 B idx) + level gather/update (8 B, uncoalesced).
            let bytes = 12.0 * relaxed as f64 + 8.0 * n as f64;
            let checksum: f64 = levels.iter().map(|&l| l as f64).sum();
            (flops.max(1.0), bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.10,
            kappa_memory: 0.25, // random gathers
            fp64_ratio: 1.0,
            sm_occupancy: 0.90,
            pcie_tx_mbs: 90.0,
            pcie_rx_mbs: 20.0,
            overhead_frac: 0.08,
            target_seconds: 10.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_graph_levels_are_distances() {
        // Pure ring: node k is at level k from node 0.
        let g = Graph::synthetic(10, 1);
        let (levels, _) = g.bfs(0);
        for (k, &l) in levels.iter().enumerate() {
            assert_eq!(l, k as i32);
        }
    }

    #[test]
    fn all_nodes_reachable() {
        let g = Graph::synthetic(5000, 4);
        let (levels, _) = g.bfs(0);
        assert!(levels.iter().all(|&l| l >= 0));
    }

    #[test]
    fn levels_respect_edge_constraint() {
        // Every edge (u, v) satisfies level(v) <= level(u) + 1.
        let g = Graph::synthetic(2000, 6);
        let (levels, _) = g.bfs(0);
        for u in 0..g.nodes() {
            for &v in &g.edges[g.offsets[u]..g.offsets[u + 1]] {
                assert!(levels[v as usize] <= levels[u] + 1);
            }
        }
    }

    #[test]
    fn relaxed_counts_all_edges_of_reached_nodes() {
        let g = Graph::synthetic(1000, 3);
        let (_, relaxed) = g.bfs(0);
        assert_eq!(relaxed as usize, g.edges.len());
    }

    #[test]
    fn essentially_flop_free() {
        let s = Bfs {
            nodes: 2000,
            degree: 4,
        }
        .run(1.0);
        assert!(s.intensity() < 0.01);
    }
}
