//! HOTSPOT — chip thermal simulation, 2D stencil with power sources.

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// HotSpot benchmark.
#[derive(Debug, Clone)]
pub struct Hotspot {
    /// Grid edge at scale 1.0.
    pub n: usize,
    /// Simulation steps.
    pub steps: usize,
}

impl Default for Hotspot {
    fn default() -> Self {
        Self { n: 256, steps: 4 }
    }
}

impl Hotspot {
    /// One explicit thermal step:
    /// `t' = t + k*(laplacian) + c*power - l*(t - t_amb)`.
    fn step(temp: &[f64], power: &[f64], n: usize) -> Vec<f64> {
        const K: f64 = 0.1;
        const C: f64 = 0.05;
        const L: f64 = 0.01;
        const T_AMB: f64 = 80.0;
        (0..n * n)
            .into_par_iter()
            .map(|idx| {
                let (y, x) = (idx / n, idx % n);
                let t = temp[idx];
                let up = if y > 0 { temp[idx - n] } else { t };
                let down = if y + 1 < n { temp[idx + n] } else { t };
                let left = if x > 0 { temp[idx - 1] } else { t };
                let right = if x + 1 < n { temp[idx + 1] } else { t };
                t + K * (up + down + left + right - 4.0 * t) + C * power[idx] - L * (t - T_AMB)
            })
            .collect()
    }
}

impl Kernel for Hotspot {
    fn name(&self) -> &'static str {
        "HOTSPOT"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.n as f64 * scale.sqrt()).round() as usize).max(8);
        timed(|| {
            let power: Vec<f64> = (0..n * n)
                .map(|i| {
                    if (i / n + i % n).is_multiple_of(7) {
                        2.0
                    } else {
                        0.1
                    }
                })
                .collect();
            let mut temp = vec![80.0f64; n * n];
            for _ in 0..self.steps {
                temp = Self::step(&temp, &power, n);
            }
            let cells = (n * n * self.steps) as f64;
            let flops = 12.0 * cells;
            let bytes = 24.0 * cells; // temp read+write, power read
            let checksum: f64 = temp.par_iter().sum();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.50,
            kappa_memory: 0.70,
            fp64_ratio: 0.0,
            sm_occupancy: 0.85,
            pcie_tx_mbs: 70.0,
            pcie_rx_mbs: 35.0,
            overhead_frac: 0.05,
            target_seconds: 13.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambient_equilibrium_without_power() {
        // With zero power at ambient temperature, nothing changes.
        let n = 8;
        let temp = vec![80.0; n * n];
        let power = vec![0.0; n * n];
        let t1 = Hotspot::step(&temp, &power, n);
        for &t in &t1 {
            assert!((t - 80.0).abs() < 1e-12);
        }
    }

    #[test]
    fn heat_source_warms_its_cell() {
        let n = 8;
        let temp = vec![80.0; n * n];
        let mut power = vec![0.0; n * n];
        let hot = 3 * n + 3;
        power[hot] = 5.0;
        let t1 = Hotspot::step(&temp, &power, n);
        assert!(t1[hot] > 80.0);
        assert!((t1[0] - 80.0).abs() < 1e-12);
    }

    #[test]
    fn heat_diffuses_to_neighbours() {
        let n = 8;
        let mut temp = vec![80.0; n * n];
        let hot = 3 * n + 3;
        temp[hot] = 100.0;
        let power = vec![0.0; n * n];
        let t1 = Hotspot::step(&temp, &power, n);
        assert!(t1[hot] < 100.0, "hot cell cools");
        assert!(t1[hot - 1] > 80.0, "neighbour warms");
    }

    #[test]
    fn temperatures_stay_bounded() {
        let s = Hotspot { n: 32, steps: 50 }.run(1.0);
        // checksum = sum of temps; with leakage it converges near
        // ambient + C/L * mean power: stays well below 32*32*1000.
        assert!(s.checksum < 32.0 * 32.0 * 1000.0);
        assert!(s.checksum > 0.0);
    }
}
