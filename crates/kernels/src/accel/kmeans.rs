//! KMEANS — Lloyd's k-means clustering iterations.

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// K-means benchmark.
#[derive(Debug, Clone)]
pub struct Kmeans {
    /// Points at scale 1.0.
    pub points: usize,
    /// Dimensions per point.
    pub dims: usize,
    /// Cluster count.
    pub k: usize,
    /// Lloyd iterations.
    pub iters: usize,
}

impl Default for Kmeans {
    fn default() -> Self {
        Self {
            points: 20_000,
            dims: 16,
            k: 12,
            iters: 4,
        }
    }
}

impl Kmeans {
    fn data(n: usize, d: usize, k: usize) -> Vec<f64> {
        // Points around k well-separated centres.
        (0..n * d)
            .map(|i| {
                let point = i / d;
                let dim = i % d;
                let cluster = point % k;
                let centre = (cluster * 10 + dim) as f64;
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                centre + ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5)
            })
            .collect()
    }

    /// One Lloyd iteration: assignment + centroid update. Returns
    /// `(assignments, new_centroids)`.
    fn lloyd_step(
        data: &[f64],
        cents: &[f64],
        n: usize,
        d: usize,
        k: usize,
    ) -> (Vec<u32>, Vec<f64>) {
        let assign: Vec<u32> = (0..n)
            .into_par_iter()
            .map(|p| {
                let pt = &data[p * d..(p + 1) * d];
                let mut best = 0u32;
                let mut best_d = f64::INFINITY;
                for c in 0..k {
                    let ct = &cents[c * d..(c + 1) * d];
                    let dist: f64 = pt.iter().zip(ct).map(|(&a, &b)| (a - b) * (a - b)).sum();
                    if dist < best_d {
                        best_d = dist;
                        best = c as u32;
                    }
                }
                best
            })
            .collect();
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0usize; k];
        for p in 0..n {
            let c = assign[p] as usize;
            counts[c] += 1;
            for j in 0..d {
                sums[c * d + j] += data[p * d + j];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..d {
                    sums[c * d + j] /= counts[c] as f64;
                }
            } else {
                sums[c * d..(c + 1) * d].copy_from_slice(&cents[c * d..(c + 1) * d]);
            }
        }
        (assign, sums)
    }
}

impl Kernel for Kmeans {
    fn name(&self) -> &'static str {
        "KMEANS"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.points as f64 * scale).round() as usize).max(self.k * 4);
        let (d, k) = (self.dims, self.k);
        timed(|| {
            let data = Self::data(n, d, k);
            // Init centroids from the first k points.
            let mut cents = data[..k * d].to_vec();
            let mut assign = Vec::new();
            for _ in 0..self.iters {
                let (a, c) = Self::lloyd_step(&data, &cents, n, d, k);
                assign = a;
                cents = c;
            }
            let it = self.iters as f64;
            let flops = 3.0 * (n * d * k) as f64 * it + (n * d) as f64 * it;
            let bytes = 8.0 * (n * d) as f64 * it + 8.0 * (k * d) as f64 * it + 4.0 * n as f64 * it;
            let checksum: f64 =
                assign.iter().map(|&a| a as f64).sum::<f64>() + cents.iter().sum::<f64>();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            // Distance kernel sits near the fp32 ridge: crossover around
            // 1230 MHz on the A100.
            kappa_compute: 0.35,
            kappa_memory: 0.65,
            fp64_ratio: 0.0,
            sm_occupancy: 0.70,
            pcie_tx_mbs: 100.0,
            pcie_rx_mbs: 15.0,
            overhead_frac: 0.05,
            target_seconds: 14.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_separated_clusters_recovered() {
        let (n, d, k) = (300, 4, 3);
        let data = Kmeans::data(n, d, k);
        let mut cents = data[..k * d].to_vec();
        let mut assign = Vec::new();
        for _ in 0..10 {
            let (a, c) = Kmeans::lloyd_step(&data, &cents, n, d, k);
            assign = a;
            cents = c;
        }
        // Points generated as point%k share a cluster; check consistency.
        for p in 0..n {
            assert_eq!(
                assign[p],
                assign[p % k],
                "point {p} split from its generator cluster"
            );
        }
    }

    #[test]
    fn assignment_picks_nearest_centroid() {
        let data = vec![0.0, 0.0, 10.0, 10.0];
        let cents = vec![0.0, 0.0, 10.0, 10.0];
        let (assign, _) = Kmeans::lloyd_step(&data, &cents, 2, 2, 2);
        assert_eq!(assign, vec![0, 1]);
    }

    #[test]
    fn centroid_is_mean_of_members() {
        let data = vec![0.0, 2.0, 4.0, 100.0]; // 1-D points
        let cents = vec![1.0, 90.0];
        let (_, new_cents) = Kmeans::lloyd_step(&data, &cents, 4, 1, 2);
        assert!((new_cents[0] - 2.0).abs() < 1e-12); // mean(0,2,4)
        assert!((new_cents[1] - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_keeps_old_centroid() {
        let data = vec![0.0, 0.1];
        let cents = vec![0.0, 50.0];
        let (_, new_cents) = Kmeans::lloyd_step(&data, &cents, 2, 1, 2);
        assert_eq!(new_cents[1], 50.0);
    }

    #[test]
    fn flops_scale_with_ndk() {
        let s = Kmeans {
            points: 100,
            dims: 2,
            k: 5,
            iters: 1,
        }
        .run(1.0);
        assert_eq!(s.flops, 3.0 * 1000.0 + 200.0);
    }
}
