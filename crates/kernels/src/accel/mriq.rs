//! MRIQ — MRI reconstruction Q-matrix computation (compute bound, FP32-style).
//!
//! For every voxel, accumulates `phi * cos(2π k·x)` and `phi * sin(2π k·x)`
//! over all k-space samples — the classic trigonometry-heavy Parboil/SPEC
//! kernel.

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// MRI-Q benchmark.
#[derive(Debug, Clone)]
pub struct Mriq {
    /// Voxels at scale 1.0.
    pub voxels: usize,
    /// K-space samples.
    pub ksamples: usize,
}

impl Default for Mriq {
    fn default() -> Self {
        Self {
            voxels: 4096,
            ksamples: 256,
        }
    }
}

fn coords(n: usize, salt: u64) -> Vec<[f64; 3]> {
    (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(salt);
            let f = |shift: u32| ((h >> shift) & 0xFFFF) as f64 / 65536.0 - 0.5;
            [f(0), f(16), f(32)]
        })
        .collect()
}

impl Kernel for Mriq {
    fn name(&self) -> &'static str {
        "MRIQ"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let v = ((self.voxels as f64 * scale).round() as usize).max(16);
        let k = self.ksamples;
        timed(|| {
            let xs = coords(v, 1);
            let ks = coords(k, 2);
            let phi: Vec<f64> = (0..k).map(|i| 1.0 + (i % 5) as f64 * 0.1).collect();
            let q: Vec<(f64, f64)> = xs
                .par_iter()
                .map(|x| {
                    let mut re = 0.0;
                    let mut im = 0.0;
                    for (kv, &p) in ks.iter().zip(&phi) {
                        let ang = 2.0
                            * std::f64::consts::PI
                            * (kv[0] * x[0] + kv[1] * x[1] + kv[2] * x[2]);
                        re += p * ang.cos();
                        im += p * ang.sin();
                    }
                    (re, im)
                })
                .collect();
            let pairs = (v * k) as f64;
            // 5 (dot) + 2 (sincos counted as 2 ops GPU-side) + 4 (mul/acc).
            let flops = 11.0 * pairs;
            // k-space data fits in shared memory; voxels stream once.
            let bytes = 24.0 * v as f64 + 32.0 * k as f64 + 16.0 * v as f64;
            let checksum: f64 = q.iter().map(|&(r, i)| r.abs() + i.abs()).sum();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.80,
            kappa_memory: 0.60,
            fp64_ratio: 0.0,
            sm_occupancy: 0.55,
            pcie_tx_mbs: 25.0,
            pcie_rx_mbs: 15.0,
            overhead_frac: 0.03,
            target_seconds: 20.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_magnitude_bounded_by_phi_sum() {
        // |Q(x)| <= sum(phi) pointwise.
        let k = Mriq {
            voxels: 64,
            ksamples: 32,
        };
        let s = k.run(1.0);
        let phi_sum: f64 = (0..32).map(|i| 1.0 + (i % 5) as f64 * 0.1).sum();
        // checksum = sum over voxels of |re|+|im| <= 2 * voxels * phi_sum
        assert!(s.checksum <= 2.0 * 64.0 * phi_sum + 1e-9);
        assert!(s.checksum > 0.0);
    }

    #[test]
    fn zero_k_vector_sums_all_phi_into_re() {
        // With k = 0, ang = 0 => re = sum(phi), im = 0. Verify via direct
        // computation (not through the kernel's hashed coordinates).
        let phi = [1.0, 2.0, 0.5];
        let mut re = 0.0;
        let mut im = 0.0;
        for &p in &phi {
            re += p * 0.0f64.cos();
            im += p * 0.0f64.sin();
        }
        assert_eq!(re, 3.5);
        assert_eq!(im, 0.0);
    }

    #[test]
    fn flops_scale_with_voxels_times_samples() {
        let s = Mriq {
            voxels: 100,
            ksamples: 50,
        }
        .run(1.0);
        assert_eq!(s.flops, 11.0 * 5000.0);
    }

    #[test]
    fn compute_bound_intensity() {
        let s = Mriq::default().run(1.0);
        assert!(s.intensity() > 20.0);
    }
}
