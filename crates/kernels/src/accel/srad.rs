//! SRAD — speckle-reducing anisotropic diffusion (ultrasound denoising).

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// SRAD benchmark.
#[derive(Debug, Clone)]
pub struct Srad {
    /// Image edge at scale 1.0.
    pub n: usize,
    /// Diffusion iterations.
    pub iters: usize,
    /// Diffusion rate.
    pub lambda: f64,
}

impl Default for Srad {
    fn default() -> Self {
        Self {
            n: 192,
            iters: 3,
            lambda: 0.1,
        }
    }
}

impl Srad {
    fn image(n: usize) -> Vec<f64> {
        (0..n * n)
            .map(|i| {
                let (y, x) = (i / n, i % n);
                let base = if (x / 16 + y / 16) % 2 == 0 {
                    60.0
                } else {
                    120.0
                };
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let speckle = 1.0 + 0.2 * (((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5);
                base * speckle
            })
            .collect()
    }

    /// One SRAD iteration over the image.
    fn diffuse(img: &[f64], n: usize, lambda: f64) -> Vec<f64> {
        // Instantaneous coefficient of variation over the whole image.
        let mean: f64 = img.iter().sum::<f64>() / img.len() as f64;
        let var: f64 = img.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / img.len() as f64;
        let q0sq = var / (mean * mean);

        // Diffusion coefficient field.
        let coeff: Vec<f64> = (0..n * n)
            .into_par_iter()
            .map(|i| {
                let (y, x) = (i / n, i % n);
                let c = img[i];
                let up = if y > 0 { img[i - n] } else { c };
                let down = if y + 1 < n { img[i + n] } else { c };
                let left = if x > 0 { img[i - 1] } else { c };
                let right = if x + 1 < n { img[i + 1] } else { c };
                let dn = up - c;
                let ds = down - c;
                let dw = left - c;
                let de = right - c;
                let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (c * c);
                let l = (dn + ds + dw + de) / c;
                let qsq = (0.5 * g2 - 0.0625 * l * l) / ((1.0 + 0.25 * l) * (1.0 + 0.25 * l));
                let num = qsq - q0sq;
                // Guard the speckle-free case (q0 = 0): diffuse freely.
                let den = (q0sq * (1.0 + q0sq)).max(1e-12);
                (1.0 / (1.0 + num / den)).clamp(0.0, 1.0)
            })
            .collect();

        // Divergence update.
        (0..n * n)
            .into_par_iter()
            .map(|i| {
                let (y, x) = (i / n, i % n);
                let c = img[i];
                let cc = coeff[i];
                let c_down = if y + 1 < n { coeff[i + n] } else { cc };
                let c_right = if x + 1 < n { coeff[i + 1] } else { cc };
                let up = if y > 0 { img[i - n] } else { c };
                let down = if y + 1 < n { img[i + n] } else { c };
                let left = if x > 0 { img[i - 1] } else { c };
                let right = if x + 1 < n { img[i + 1] } else { c };
                let div =
                    c_down * (down - c) + cc * (up - c) + c_right * (right - c) + cc * (left - c);
                c + 0.25 * lambda * div
            })
            .collect()
    }
}

impl Kernel for Srad {
    fn name(&self) -> &'static str {
        "SRAD"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.n as f64 * scale.sqrt()).round() as usize).max(8);
        timed(|| {
            let mut img = Self::image(n);
            for _ in 0..self.iters {
                img = Self::diffuse(&img, n, self.lambda);
            }
            let cells = (n * n * self.iters) as f64;
            let flops = 40.0 * cells;
            let bytes = 48.0 * cells;
            let checksum: f64 = img.par_iter().sum();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            // Two dependent stencil passes with poor ILP: crossover near
            // 610 MHz on the A100.
            kappa_compute: 0.15,
            kappa_memory: 0.75,
            fp64_ratio: 0.0,
            sm_occupancy: 0.75,
            pcie_tx_mbs: 85.0,
            pcie_rx_mbs: 85.0,
            overhead_frac: 0.04,
            target_seconds: 15.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn variance(img: &[f64]) -> f64 {
        let mean: f64 = img.iter().sum::<f64>() / img.len() as f64;
        img.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / img.len() as f64
    }

    #[test]
    fn diffusion_reduces_speckle_variance_within_regions() {
        let n = 32;
        // Single flat region with speckle noise only.
        let img: Vec<f64> = (0..n * n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                100.0 * (1.0 + 0.2 * (((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5))
            })
            .collect();
        let v0 = variance(&img);
        let mut out = img;
        for _ in 0..5 {
            out = Srad::diffuse(&out, n, 0.2);
        }
        assert!(variance(&out) < v0 * 0.8, "variance not reduced");
    }

    #[test]
    fn mean_intensity_roughly_preserved() {
        let n = 24;
        let img = Srad::image(n);
        let mean0: f64 = img.iter().sum::<f64>() / img.len() as f64;
        let out = Srad::diffuse(&img, n, 0.1);
        let mean1: f64 = out.iter().sum::<f64>() / out.len() as f64;
        assert!((mean0 - mean1).abs() / mean0 < 0.01);
    }

    #[test]
    fn output_stays_finite_and_positive() {
        let k = Srad {
            n: 48,
            iters: 8,
            lambda: 0.1,
        };
        let s = k.run(1.0);
        assert!(s.checksum.is_finite() && s.checksum > 0.0);
    }

    #[test]
    fn constant_image_is_fixed_point() {
        let n = 16;
        let img = vec![50.0; n * n];
        let out = Srad::diffuse(&img, n, 0.5);
        for &v in &out {
            assert!((v - 50.0).abs() < 1e-9);
        }
    }
}
