//! The 19 SPEC-ACCEL-analogue benchmark kernels (paper Table 2).
//!
//! Each module implements a real, parallel, instrumented CPU kernel with a
//! correctness test, plus a calibrated GPU efficiency profile. Together
//! they span the activity plane from strongly compute bound (MRIQ, CUTCP)
//! to strongly memory/latency bound (BFS, BPLUSTREE).

pub mod bfs;
pub mod bplustree;
pub mod cfd;
pub mod cutcp;
pub mod fft;
pub mod ge;
pub mod heartwall;
pub mod histo;
pub mod hotspot;
pub mod kmeans;
pub mod lavamd;
pub mod lbm;
pub mod lud;
pub mod mriq;
pub mod nw;
pub mod spmv;
pub mod srad;
pub mod stencil;
pub mod tpacf;

pub use bfs::Bfs;
pub use bplustree::Bplustree;
pub use cfd::Cfd;
pub use cutcp::Cutcp;
pub use fft::Fft;
pub use ge::Ge;
pub use heartwall::Heartwall;
pub use histo::Histo;
pub use hotspot::Hotspot;
pub use kmeans::Kmeans;
pub use lavamd::Lavamd;
pub use lbm::Lbm;
pub use lud::Lud;
pub use mriq::Mriq;
pub use nw::Nw;
pub use spmv::Spmv;
pub use srad::Srad;
pub use stencil::Stencil;
pub use tpacf::Tpacf;
