//! HISTO — saturating histogram (memory bound, atomic-update limited).

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// Histogram bin count (SPEC ACCEL's histo uses a 256-wide colour space).
const BINS: usize = 256;
/// Saturation value (histo saturates bins at 255).
const SAT: u32 = 255;

/// Saturating-histogram benchmark.
#[derive(Debug, Clone)]
pub struct Histo {
    /// Input elements at scale 1.0.
    pub len: usize,
}

impl Default for Histo {
    fn default() -> Self {
        Self { len: 1 << 21 }
    }
}

impl Histo {
    /// Computes the saturating histogram with per-thread private bins merged
    /// at the end (the standard GPU strategy).
    fn compute(data: &[u8]) -> Vec<u32> {
        let merged = data
            .par_chunks(64 * 1024)
            .map(|chunk| {
                let mut local = vec![0u32; BINS];
                for &v in chunk {
                    local[v as usize] += 1;
                }
                local
            })
            .reduce(
                || vec![0u32; BINS],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x = x.saturating_add(*y);
                    }
                    a
                },
            );
        merged.into_iter().map(|c| c.min(SAT)).collect()
    }
}

impl Kernel for Histo {
    fn name(&self) -> &'static str {
        "HISTO"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.len as f64 * scale).round() as usize).max(256);
        timed(|| {
            // Skewed input: many values land in a hot region, as in the
            // benchmark's silicon-wafer images.
            let data: Vec<u8> = (0..n)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let u = (h >> 40) as u32 % 1000;
                    if u < 700 {
                        (u % 32) as u8 // hot bins
                    } else {
                        (h >> 8) as u8
                    }
                })
                .collect();
            let hist = Self::compute(&data);
            let flops = n as f64; // bin index arithmetic
            let bytes = n as f64 + 8.0 * BINS as f64; // one byte read/elem
            let checksum = hist.iter().map(|&c| c as f64).sum::<f64>();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.20,
            kappa_memory: 0.35, // atomic contention wastes bandwidth
            fp64_ratio: 0.0,
            sm_occupancy: 0.70,
            pcie_tx_mbs: 150.0,
            pcie_rx_mbs: 10.0,
            overhead_frac: 0.06,
            target_seconds: 12.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_correct_without_saturation() {
        let data: Vec<u8> = vec![3, 3, 5, 255, 0];
        let h = Histo::compute(&data);
        assert_eq!(h[3], 2);
        assert_eq!(h[5], 1);
        assert_eq!(h[255], 1);
        assert_eq!(h[0], 1);
        assert_eq!(h[7], 0);
    }

    #[test]
    fn bins_saturate_at_255() {
        let data: Vec<u8> = vec![9; 1000];
        let h = Histo::compute(&data);
        assert_eq!(h[9], SAT);
    }

    #[test]
    fn parallel_matches_serial() {
        let data: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
        let par = Histo::compute(&data);
        let mut ser = vec![0u32; BINS];
        for &v in &data {
            ser[v as usize] += 1;
        }
        let ser: Vec<u32> = ser.into_iter().map(|c| c.min(SAT)).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn strongly_memory_bound() {
        let s = Histo { len: 10_000 }.run(1.0);
        assert!(s.intensity() <= 1.0);
    }
}
