//! LBM — D2Q9 lattice-Boltzmann collision + streaming step.

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// D2Q9 lattice velocities.
const VEL: [(i32, i32); 9] = [
    (0, 0),
    (1, 0),
    (0, 1),
    (-1, 0),
    (0, -1),
    (1, 1),
    (-1, 1),
    (-1, -1),
    (1, -1),
];
/// D2Q9 lattice weights.
const W: [f64; 9] = [
    4.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

/// Lattice-Boltzmann benchmark on an `n x n` periodic grid.
#[derive(Debug, Clone)]
pub struct Lbm {
    /// Grid edge at scale 1.0.
    pub n: usize,
    /// Time steps per run.
    pub steps: usize,
}

impl Default for Lbm {
    fn default() -> Self {
        Self { n: 96, steps: 4 }
    }
}

impl Lbm {
    /// One BGK collision + streaming step over distribution field `f`
    /// (layout: `[cell][direction]`). Returns the new field.
    fn step(f: &[f64], n: usize, omega: f64) -> Vec<f64> {
        // Collision (per-cell, parallel).
        let post: Vec<f64> = f
            .par_chunks(9)
            .flat_map_iter(|cell| {
                let rho: f64 = cell.iter().sum();
                let ux: f64 = cell
                    .iter()
                    .zip(&VEL)
                    .map(|(&fi, &(cx, _))| fi * cx as f64)
                    .sum::<f64>()
                    / rho;
                let uy: f64 = cell
                    .iter()
                    .zip(&VEL)
                    .map(|(&fi, &(_, cy))| fi * cy as f64)
                    .sum::<f64>()
                    / rho;
                let usq = ux * ux + uy * uy;
                (0..9).map(move |q| {
                    let (cx, cy) = VEL[q];
                    let cu = cx as f64 * ux + cy as f64 * uy;
                    let feq = W[q] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * usq);
                    cell[q] + omega * (feq - cell[q])
                })
            })
            .collect();
        // Streaming (gather from upwind neighbour, periodic).
        let mut out = vec![0.0; f.len()];
        out.par_chunks_mut(9).enumerate().for_each(|(idx, cell)| {
            let (x, y) = ((idx % n) as i32, (idx / n) as i32);
            for q in 0..9 {
                let (cx, cy) = VEL[q];
                let sx = (x - cx).rem_euclid(n as i32) as usize;
                let sy = (y - cy).rem_euclid(n as i32) as usize;
                cell[q] = post[(sy * n + sx) * 9 + q];
            }
        });
        out
    }
}

impl Kernel for Lbm {
    fn name(&self) -> &'static str {
        "LBM"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.n as f64 * scale.sqrt()).round() as usize).max(8);
        timed(|| {
            // Initial state: small density perturbation.
            let mut f: Vec<f64> = (0..n * n)
                .flat_map(|i| {
                    let rho = 1.0 + 0.01 * ((i % 17) as f64 / 17.0);
                    W.iter().map(move |&w| w * rho).collect::<Vec<_>>()
                })
                .collect();
            for _ in 0..self.steps {
                f = Self::step(&f, n, 1.2);
            }
            let cells = (n * n) as f64;
            let flops = (9.0 * 12.0 + 15.0) * cells * self.steps as f64;
            let bytes = 9.0 * 8.0 * 2.0 * cells * self.steps as f64 * 2.0;
            let checksum: f64 = f.par_iter().sum();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.55,
            kappa_memory: 0.70,
            fp64_ratio: 1.0,
            sm_occupancy: 0.75,
            pcie_tx_mbs: 50.0,
            pcie_rx_mbs: 25.0,
            overhead_frac: 0.04,
            target_seconds: 24.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_is_conserved() {
        let n = 16;
        let f0: Vec<f64> = (0..n * n)
            .flat_map(|i| {
                let rho = 1.0 + 0.05 * ((i % 7) as f64 / 7.0);
                W.iter().map(move |&w| w * rho).collect::<Vec<_>>()
            })
            .collect();
        let total0: f64 = f0.iter().sum();
        let f1 = Lbm::step(&f0, n, 1.2);
        let total1: f64 = f1.iter().sum();
        assert!((total0 - total1).abs() < 1e-9 * total0);
    }

    #[test]
    fn uniform_rest_state_is_stationary() {
        let n = 8;
        let f0: Vec<f64> = (0..n * n).flat_map(|_| W.to_vec()).collect();
        let f1 = Lbm::step(&f0, n, 1.0);
        for (a, b) in f0.iter().zip(&f1) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_sum_to_one() {
        assert!((W.iter().sum::<f64>() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn run_produces_finite_state() {
        let k = Lbm { n: 24, steps: 3 };
        let s = k.run(1.0);
        assert!(s.checksum.is_finite());
        assert!(s.flops > 0.0 && s.bytes > 0.0);
    }
}
