//! STENCIL — 3D 7-point Jacobi iteration (memory bound).

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// 3D Jacobi stencil benchmark.
#[derive(Debug, Clone)]
pub struct Stencil {
    /// Grid edge at scale 1.0.
    pub n: usize,
    /// Jacobi sweeps per run.
    pub iters: usize,
}

impl Default for Stencil {
    fn default() -> Self {
        Self { n: 48, iters: 4 }
    }
}

impl Stencil {
    /// One Jacobi sweep: `dst = c0*src + c1*sum(6 neighbours)`, interior only.
    fn sweep(src: &[f64], dst: &mut [f64], n: usize) {
        let (c0, c1) = (0.5, 1.0 / 12.0);
        let plane = n * n;
        dst.par_chunks_mut(plane)
            .enumerate()
            .for_each(|(z, out_plane)| {
                if z == 0 || z == n - 1 {
                    out_plane.copy_from_slice(&src[z * plane..(z + 1) * plane]);
                    return;
                }
                for y in 1..n - 1 {
                    for x in 1..n - 1 {
                        let i = z * plane + y * n + x;
                        out_plane[y * n + x] = c0 * src[i]
                            + c1 * (src[i - 1]
                                + src[i + 1]
                                + src[i - n]
                                + src[i + n]
                                + src[i - plane]
                                + src[i + plane]);
                    }
                }
                // boundary rows/cols keep src values
                for x in 0..n {
                    out_plane[x] = src[z * plane + x];
                    out_plane[(n - 1) * n + x] = src[z * plane + (n - 1) * n + x];
                }
                for y in 0..n {
                    out_plane[y * n] = src[z * plane + y * n];
                    out_plane[y * n + n - 1] = src[z * plane + y * n + n - 1];
                }
            });
    }
}

impl Kernel for Stencil {
    fn name(&self) -> &'static str {
        "STENCIL"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.n as f64 * scale.cbrt()).round() as usize).max(8);
        timed(|| {
            let mut a: Vec<f64> = (0..n * n * n).map(|i| ((i % 13) as f64) * 0.1).collect();
            let mut b = vec![0.0; n * n * n];
            for _ in 0..self.iters {
                Self::sweep(&a, &mut b, n);
                std::mem::swap(&mut a, &mut b);
            }
            let interior = ((n - 2) * (n - 2) * (n - 2)) as f64;
            let flops = 8.0 * interior * self.iters as f64;
            let bytes = 16.0 * (n * n * n) as f64 * self.iters as f64;
            let checksum: f64 = a.par_iter().sum();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.60,
            kappa_memory: 0.75,
            fp64_ratio: 1.0,
            sm_occupancy: 0.80,
            pcie_tx_mbs: 60.0,
            pcie_rx_mbs: 30.0,
            overhead_frac: 0.03,
            target_seconds: 18.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_field_is_fixed_point() {
        // c0 + 6*c1 = 1, so a constant field maps to itself.
        let n = 8;
        let src = vec![2.0; n * n * n];
        let mut dst = vec![0.0; n * n * n];
        Stencil::sweep(&src, &mut dst, n);
        for &v in &dst {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sweep_smooths_an_impulse() {
        let n = 9;
        let mut src = vec![0.0; n * n * n];
        let centre = (n / 2) * n * n + (n / 2) * n + n / 2;
        src[centre] = 1.0;
        let mut dst = vec![0.0; n * n * n];
        Stencil::sweep(&src, &mut dst, n);
        assert!((dst[centre] - 0.5).abs() < 1e-12);
        assert!((dst[centre + 1] - 1.0 / 12.0).abs() < 1e-12);
        // Total mass is conserved by this stencil (c0 + 6 c1 = 1).
        let sum: f64 = dst.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boundaries_are_preserved() {
        let n = 8;
        let src: Vec<f64> = (0..n * n * n).map(|i| i as f64).collect();
        let mut dst = vec![0.0; n * n * n];
        Stencil::sweep(&src, &mut dst, n);
        assert_eq!(dst[0], src[0]);
        assert_eq!(dst[n * n * n - 1], src[n * n * n - 1]);
    }

    #[test]
    fn stats_count_interior_work() {
        let k = Stencil { n: 10, iters: 2 };
        let s = k.run(1.0);
        assert_eq!(s.flops, 8.0 * 512.0 * 2.0);
        assert!(s.intensity() < 1.0); // memory bound
    }
}
