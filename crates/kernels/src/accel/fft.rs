//! FFT — iterative radix-2 complex fast Fourier transform.

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// Complex number as `(re, im)`.
type C = (f64, f64);

/// Batch-FFT benchmark: many independent transforms, parallel over the
/// batch (the natural GPU decomposition).
#[derive(Debug, Clone)]
pub struct Fft {
    /// Transform length (power of two) at scale 1.0.
    pub len: usize,
    /// Number of independent transforms per run.
    pub batch: usize,
}

impl Default for Fft {
    fn default() -> Self {
        Self {
            len: 1024,
            batch: 64,
        }
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
pub fn fft_inplace(data: &mut [C]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wl = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w: C = (1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2];
                let t = (v.0 * w.0 - v.1 * w.1, v.0 * w.1 + v.1 * w.0);
                data[start + k] = (u.0 + t.0, u.1 + t.1);
                data[start + k + len / 2] = (u.0 - t.0, u.1 - t.1);
                w = (w.0 * wl.0 - w.1 * wl.1, w.0 * wl.1 + w.1 * wl.0);
            }
        }
        len <<= 1;
    }
}

/// Naive DFT used as a correctness reference in tests.
pub fn dft_reference(input: &[C]) -> Vec<C> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = (0.0, 0.0);
            for (t, &(re, im)) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                acc.0 += re * c - im * s;
                acc.1 += re * s + im * c;
            }
            acc
        })
        .collect()
}

impl Kernel for Fft {
    fn name(&self) -> &'static str {
        "FFT"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let batch = ((self.batch as f64 * scale).round() as usize).max(1);
        let n = self.len;
        timed(|| {
            let checksum: f64 = (0..batch)
                .into_par_iter()
                .map(|b| {
                    let mut data: Vec<C> = (0..n)
                        .map(|i| {
                            let x = ((i * 7 + b * 13) % 31) as f64 / 31.0;
                            (x, 0.0)
                        })
                        .collect();
                    fft_inplace(&mut data);
                    data.iter().map(|c| c.0.abs() + c.1.abs()).sum::<f64>()
                })
                .sum();
            let nf = n as f64;
            let log2n = nf.log2();
            let flops = 5.0 * nf * log2n * batch as f64;
            // GPU FFT does a DRAM round trip roughly every 4 butterfly
            // stages (shared-memory radix-16 passes).
            let bytes = 16.0 * nf * (log2n / 4.0).ceil() * batch as f64 * 2.0;
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.60,
            kappa_memory: 0.65,
            fp64_ratio: 0.0, // cuFFT benchmark runs single precision
            sm_occupancy: 0.65,
            pcie_tx_mbs: 80.0,
            pcie_rx_mbs: 80.0,
            overhead_frac: 0.05,
            target_seconds: 16.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_dft() {
        let input: Vec<C> = (0..32)
            .map(|i| ((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut fast = input.clone();
        fft_inplace(&mut fast);
        let slow = dft_reference(&input);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a.0 - b.0).abs() < 1e-9, "{} vs {}", a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut data = vec![(0.0, 0.0); 16];
        data[0] = (1.0, 0.0);
        fft_inplace(&mut data);
        for &(re, im) in &data {
            assert!((re - 1.0).abs() < 1e-12 && im.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let input: Vec<C> = (0..64).map(|i| ((i as f64).sin(), 0.0)).collect();
        let e_time: f64 = input.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum();
        let mut freq = input.clone();
        fft_inplace(&mut freq);
        let e_freq: f64 = freq.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f64>() / 64.0;
        assert!((e_time - e_freq).abs() < 1e-9 * e_time);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![(0.0, 0.0); 12];
        fft_inplace(&mut data);
    }

    #[test]
    fn flop_count_is_5nlogn_per_transform() {
        let k = Fft { len: 256, batch: 2 };
        let s = k.run(1.0);
        assert_eq!(s.flops, 5.0 * 256.0 * 8.0 * 2.0);
    }
}
