//! BPLUSTREE — B+ tree bulk range queries (latency bound, pointer chasing).

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// Keys per node (fan-out).
const FANOUT: usize = 16;

/// A read-only B+ tree built by bulk loading sorted keys.
#[derive(Debug)]
pub struct BpTree {
    /// Interior levels, root last. Each node stores the minimum key of each
    /// child.
    levels: Vec<Vec<u64>>,
    /// Sorted leaf keys.
    leaves: Vec<u64>,
}

impl BpTree {
    /// Bulk loads a tree from sorted unique keys.
    pub fn build(keys: Vec<u64>) -> Self {
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be sorted unique"
        );
        let mut levels = Vec::new();
        let mut current: Vec<u64> = keys.chunks(FANOUT).map(|c| c[0]).collect();
        while current.len() > 1 {
            levels.push(current.clone());
            current = current.chunks(FANOUT).map(|c| c[0]).collect();
        }
        levels.push(current);
        Self {
            levels,
            leaves: keys,
        }
    }

    /// Number of tree levels above the leaves.
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Counts keys in `[lo, hi)`; also returns the nodes visited.
    pub fn range_count(&self, lo: u64, hi: u64) -> (usize, usize) {
        // Descend via binary search within each level's relevant node.
        let mut visited = 0usize;
        // Find leaf start via partition point on the leaf array (the level
        // descent on this flattened representation is equivalent; we still
        // walk the levels to model the pointer chases).
        let mut node = 0usize;
        for level in self.levels.iter().rev() {
            let begin = node * FANOUT;
            let end = (begin + FANOUT).min(level.len());
            let slice = &level[begin..end];
            let child = slice.partition_point(|&k| k <= lo).saturating_sub(1);
            node = begin + child;
            visited += 1;
        }
        let start = self.leaves.partition_point(|&k| k < lo);
        let stop = self.leaves.partition_point(|&k| k < hi);
        visited += (stop - start) / FANOUT + 1;
        (stop - start, visited)
    }
}

/// B+ tree query benchmark.
#[derive(Debug, Clone)]
pub struct Bplustree {
    /// Key count at scale 1.0.
    pub keys: usize,
    /// Queries per run.
    pub queries: usize,
}

impl Default for Bplustree {
    fn default() -> Self {
        Self {
            keys: 1 << 18,
            queries: 20_000,
        }
    }
}

impl Kernel for Bplustree {
    fn name(&self) -> &'static str {
        "BPLUSTREE"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let nk = ((self.keys as f64 * scale).round() as usize).max(FANOUT * 2);
        timed(|| {
            let keys: Vec<u64> = (0..nk as u64).map(|i| i * 3 + 1).collect();
            let tree = BpTree::build(keys);
            let results: Vec<(usize, usize)> = (0..self.queries)
                .into_par_iter()
                .map(|q| {
                    let h = (q as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
                    let lo = h % (3 * nk as u64);
                    let hi = lo + 1 + (h >> 48) % 256;
                    tree.range_count(lo, hi)
                })
                .collect();
            let visited: usize = results.iter().map(|&(_, v)| v).sum();
            let found: usize = results.iter().map(|&(c, _)| c).sum();
            let flops = self.queries as f64; // essentially integer work
            let bytes = (visited * FANOUT * 8) as f64;
            (flops, bytes, found as f64)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.08,
            kappa_memory: 0.20, // pointer chasing, latency bound
            fp64_ratio: 1.0,
            sm_occupancy: 0.95,
            pcie_tx_mbs: 130.0,
            pcie_rx_mbs: 60.0,
            overhead_frac: 0.10,
            target_seconds: 9.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_count_matches_linear_scan() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 7).collect();
        let tree = BpTree::build(keys.clone());
        for &(lo, hi) in &[
            (0u64, 70u64),
            (35, 36),
            (500, 500),
            (6900, 10_000),
            (0, 7000),
        ] {
            let expect = keys.iter().filter(|&&k| k >= lo && k < hi).count();
            let (got, _) = tree.range_count(lo, hi);
            assert_eq!(got, expect, "range [{lo}, {hi})");
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        let small = BpTree::build((0..64u64).collect());
        let large = BpTree::build((0..65_536u64).collect());
        assert!(large.height() > small.height());
        assert!(large.height() <= 5);
    }

    #[test]
    fn empty_range_counts_zero() {
        let tree = BpTree::build((0..100u64).collect());
        let (c, _) = tree.range_count(50, 50);
        assert_eq!(c, 0);
    }

    #[test]
    #[should_panic(expected = "sorted unique")]
    fn unsorted_keys_rejected() {
        let _ = BpTree::build(vec![3, 1, 2]);
    }

    #[test]
    fn visited_nodes_bounded_by_height_plus_leaves() {
        let tree = BpTree::build((0..10_000u64).collect());
        let (count, visited) = tree.range_count(100, 200);
        assert_eq!(count, 100);
        assert!(visited <= tree.height() + 100 / FANOUT + 2);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Range counts always agree with a linear scan, for arbitrary
            /// key sets and query windows.
            #[test]
            fn range_count_matches_scan(
                mut raw in proptest::collection::vec(0u64..5_000, 2..300),
                lo in 0u64..6_000,
                width in 0u64..2_000,
            ) {
                raw.sort_unstable();
                raw.dedup();
                prop_assume!(raw.len() >= 2);
                let tree = BpTree::build(raw.clone());
                let hi = lo.saturating_add(width);
                let expect = raw.iter().filter(|&&k| k >= lo && k < hi).count();
                let (got, _) = tree.range_count(lo, hi);
                prop_assert_eq!(got, expect);
            }
        }
    }
}
