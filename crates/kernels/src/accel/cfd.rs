//! CFD — unstructured-grid Euler solver flux step (Rodinia/SPEC cfd).
//!
//! One explicit time step of the compressible Euler equations on an
//! unstructured mesh: per-cell flux accumulation over its faces.

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// Conserved variables per cell: density, momentum (x, y), energy.
const NVAR: usize = 4;
/// Faces (neighbours) per cell in the synthetic mesh.
const FACES: usize = 4;

/// CFD benchmark.
#[derive(Debug, Clone)]
pub struct Cfd {
    /// Cells at scale 1.0.
    pub cells: usize,
    /// Time steps.
    pub steps: usize,
}

impl Default for Cfd {
    fn default() -> Self {
        Self {
            cells: 30_000,
            steps: 3,
        }
    }
}

impl Cfd {
    fn neighbours(cells: usize) -> Vec<[usize; FACES]> {
        // A ring mesh with two pseudo-random long-range faces per cell.
        (0..cells)
            .map(|c| {
                let h = (c as u64).wrapping_mul(0xA24B_AED4_963E_E407);
                [
                    (c + 1) % cells,
                    (c + cells - 1) % cells,
                    (h % cells as u64) as usize,
                    ((h >> 32) % cells as u64) as usize,
                ]
            })
            .collect()
    }

    /// One explicit step: `u' = u + dt * sum_faces(flux(u_nb) - flux(u))`.
    fn step(u: &[f64], nbrs: &[[usize; FACES]], dt: f64) -> Vec<f64> {
        let cells = nbrs.len();
        (0..cells)
            .into_par_iter()
            .flat_map_iter(|c| {
                let me = &u[c * NVAR..(c + 1) * NVAR];
                let mut acc = [0.0f64; NVAR];
                for &nb in &nbrs[c] {
                    let other = &u[nb * NVAR..(nb + 1) * NVAR];
                    // Lax-Friedrichs-style flux difference with simple
                    // pressure coupling.
                    let p_me = 0.4 * (me[3] - 0.5 * (me[1] * me[1] + me[2] * me[2]) / me[0]);
                    let p_nb = 0.4
                        * (other[3] - 0.5 * (other[1] * other[1] + other[2] * other[2]) / other[0]);
                    for v in 0..NVAR {
                        acc[v] += other[v] - me[v];
                    }
                    acc[1] += 0.5 * (p_nb - p_me);
                    acc[3] += 0.5 * (p_nb - p_me);
                }
                (0..NVAR).map(move |v| me[v] + dt * acc[v])
            })
            .collect()
    }
}

impl Kernel for Cfd {
    fn name(&self) -> &'static str {
        "CFD"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let cells = ((self.cells as f64 * scale).round() as usize).max(16);
        timed(|| {
            let nbrs = Self::neighbours(cells);
            let mut u: Vec<f64> = (0..cells)
                .flat_map(|c| {
                    let rho = 1.0 + 0.1 * ((c % 13) as f64 / 13.0);
                    [rho, 0.1 * rho, 0.0, 2.5 + 0.05 * rho]
                })
                .collect();
            for _ in 0..self.steps {
                u = Self::step(&u, &nbrs, 1e-3);
            }
            let work_units = (cells * FACES * self.steps) as f64;
            let flops = 22.0 * work_units;
            // Each face touch gathers a neighbour state (uncoalesced).
            let bytes = (8.0 * NVAR as f64) * work_units + 8.0 * NVAR as f64 * cells as f64;
            let checksum: f64 = u.par_iter().sum();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            // Divergent unstructured-mesh flux kernel: very low fraction
            // of fp64 peak when compute bound, good streaming otherwise —
            // its roofline crossover sits near 1100 MHz on the A100.
            kappa_compute: 0.15,
            kappa_memory: 0.80,
            fp64_ratio: 1.0,
            sm_occupancy: 0.65,
            pcie_tx_mbs: 60.0,
            pcie_rx_mbs: 40.0,
            overhead_frac: 0.04,
            target_seconds: 19.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_state_is_stationary() {
        let nbrs = Cfd::neighbours(32);
        let u: Vec<f64> = (0..32).flat_map(|_| [1.0, 0.2, 0.0, 2.5]).collect();
        let u1 = Cfd::step(&u, &nbrs, 1e-2);
        for (a, b) in u.iter().zip(&u1) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn density_stays_positive_for_small_dt() {
        let k = Cfd {
            cells: 500,
            steps: 5,
        };
        let s = k.run(1.0);
        assert!(s.checksum.is_finite());
    }

    #[test]
    fn mass_is_conserved_on_symmetric_mesh() {
        // On the pure ring (every edge bidirectional), sum of the density
        // diffusion terms cancels.
        let cells = 16;
        let nbrs: Vec<[usize; FACES]> = (0..cells)
            .map(|c| {
                [
                    (c + 1) % cells,
                    (c + cells - 1) % cells,
                    (c + 2) % cells,
                    (c + cells - 2) % cells,
                ]
            })
            .collect();
        let u: Vec<f64> = (0..cells)
            .flat_map(|c| [1.0 + 0.1 * (c as f64).sin(), 0.0, 0.0, 2.5])
            .collect();
        let mass0: f64 = u.iter().step_by(NVAR).sum();
        let u1 = Cfd::step(&u, &nbrs, 1e-3);
        let mass1: f64 = u1.iter().step_by(NVAR).sum();
        assert!((mass0 - mass1).abs() < 1e-9);
    }

    #[test]
    fn neighbour_indices_in_range() {
        let nbrs = Cfd::neighbours(100);
        assert!(nbrs.iter().flatten().all(|&n| n < 100));
    }
}
