//! HEARTWALL — template tracking via normalized cross-correlation.
//!
//! Tracks landmark templates across an image by searching a window for the
//! best normalized-cross-correlation match — the image-processing core of
//! the Rodinia/SPEC heartwall workload.

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// Template edge in pixels.
const TPL: usize = 12;
/// Search window radius in pixels.
const WIN: usize = 6;

/// Heartwall benchmark.
#[derive(Debug, Clone)]
pub struct Heartwall {
    /// Image edge at scale 1.0.
    pub n: usize,
    /// Number of tracked landmarks.
    pub landmarks: usize,
}

impl Default for Heartwall {
    fn default() -> Self {
        Self {
            n: 160,
            landmarks: 24,
        }
    }
}

impl Heartwall {
    fn image(n: usize, shift: usize) -> Vec<f64> {
        (0..n * n)
            .map(|i| {
                let (y, x) = (i / n, (i % n + shift) % n);
                ((x as f64 * 0.3).sin() * (y as f64 * 0.2).cos() * 50.0) + 100.0
            })
            .collect()
    }

    /// Normalized cross-correlation of template `t` against the patch of
    /// `img` at (`py`, `px`).
    fn ncc(img: &[f64], n: usize, t: &[f64], py: usize, px: usize) -> f64 {
        let tm: f64 = t.iter().sum::<f64>() / t.len() as f64;
        let mut pm = 0.0;
        for dy in 0..TPL {
            for dx in 0..TPL {
                pm += img[(py + dy) * n + px + dx];
            }
        }
        pm /= (TPL * TPL) as f64;
        let (mut num, mut dt, mut dp) = (0.0, 0.0, 0.0);
        for dy in 0..TPL {
            for dx in 0..TPL {
                let tv = t[dy * TPL + dx] - tm;
                let pv = img[(py + dy) * n + px + dx] - pm;
                num += tv * pv;
                dt += tv * tv;
                dp += pv * pv;
            }
        }
        if dt == 0.0 || dp == 0.0 {
            0.0
        } else {
            num / (dt * dp).sqrt()
        }
    }

    /// Finds the best match position for each landmark; returns positions
    /// and the number of correlation evaluations.
    fn track(
        img: &[f64],
        n: usize,
        templates: &[(usize, usize, Vec<f64>)],
    ) -> (Vec<(usize, usize)>, u64) {
        let evals = std::sync::atomic::AtomicU64::new(0);
        let positions: Vec<(usize, usize)> = templates
            .par_iter()
            .map(|&(cy, cx, ref t)| {
                let mut best = (cy, cx);
                let mut best_score = f64::NEG_INFINITY;
                let y0 = cy.saturating_sub(WIN);
                let x0 = cx.saturating_sub(WIN);
                let y1 = (cy + WIN).min(n - TPL);
                let x1 = (cx + WIN).min(n - TPL);
                let mut local = 0u64;
                for py in y0..=y1 {
                    for px in x0..=x1 {
                        let s = Self::ncc(img, n, t, py, px);
                        local += 1;
                        if s > best_score {
                            best_score = s;
                            best = (py, px);
                        }
                    }
                }
                evals.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
                best
            })
            .collect();
        (positions, evals.into_inner())
    }
}

impl Kernel for Heartwall {
    fn name(&self) -> &'static str {
        "HEARTWALL"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.n as f64 * scale.sqrt()).round() as usize).max(TPL + 2 * WIN + 2);
        timed(|| {
            let frame0 = Self::image(n, 0);
            let frame1 = Self::image(n, 2); // scene shifted 2 px right
                                            // Cut templates from frame 0 at spread positions.
            let templates: Vec<(usize, usize, Vec<f64>)> = (0..self.landmarks)
                .map(|l| {
                    let cy = WIN + (l * 13) % (n - TPL - 2 * WIN);
                    let cx = WIN + (l * 29) % (n - TPL - 2 * WIN);
                    let mut t = Vec::with_capacity(TPL * TPL);
                    for dy in 0..TPL {
                        for dx in 0..TPL {
                            t.push(frame0[(cy + dy) * n + cx + dx]);
                        }
                    }
                    (cy, cx, t)
                })
                .collect();
            let (positions, evals) = Self::track(&frame1, n, &templates);
            let flops = 6.0 * (TPL * TPL) as f64 * evals as f64;
            let bytes = 8.0 * (TPL * TPL) as f64 * evals as f64 / 8.0 + 8.0 * (n * n) as f64;
            let checksum: f64 = positions.iter().map(|&(y, x)| (y * 31 + x) as f64).sum();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            // Windowed correlation with heavy branch divergence: crossover
            // near 1060 MHz on the A100.
            kappa_compute: 0.50,
            kappa_memory: 0.60,
            fp64_ratio: 0.0,
            sm_occupancy: 0.45,
            pcie_tx_mbs: 110.0,
            pcie_rx_mbs: 20.0,
            overhead_frac: 0.07,
            target_seconds: 18.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ncc_of_identical_patch_is_one() {
        let n = 40;
        let img = Heartwall::image(n, 0);
        let mut t = Vec::new();
        for dy in 0..TPL {
            for dx in 0..TPL {
                t.push(img[(10 + dy) * n + 8 + dx]);
            }
        }
        let s = Heartwall::ncc(&img, n, &t, 10, 8);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tracking_recovers_known_shift() {
        // frame1 is frame0 shifted right by 2: template from (cy, cx) in
        // frame0 appears at (cy, cx - 2) in frame1 (content moved right
        // means matching column index shifts left by the same amount under
        // the (x + shift) construction).
        let n = 64;
        let frame0 = Heartwall::image(n, 0);
        let frame1 = Heartwall::image(n, 2);
        let (cy, cx) = (20, 20);
        let mut t = Vec::new();
        for dy in 0..TPL {
            for dx in 0..TPL {
                t.push(frame0[(cy + dy) * n + cx + dx]);
            }
        }
        let (pos, _) = Heartwall::track(&frame1, n, &[(cy, cx, t)]);
        assert_eq!(pos[0].0, cy);
        assert_eq!(pos[0].1, cx - 2);
    }

    #[test]
    fn ncc_is_shift_invariant_in_intensity() {
        let n = 40;
        let img = Heartwall::image(n, 0);
        let brighter: Vec<f64> = img.iter().map(|&v| v + 500.0).collect();
        let mut t = Vec::new();
        for dy in 0..TPL {
            for dx in 0..TPL {
                t.push(img[(5 + dy) * n + 5 + dx]);
            }
        }
        let s = Heartwall::ncc(&brighter, n, &t, 5, 5);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_patch_scores_zero() {
        let n = 40;
        let img = vec![7.0; n * n];
        let t = vec![1.0; TPL * TPL];
        assert_eq!(Heartwall::ncc(&img, n, &t, 0, 0), 0.0);
    }
}
