//! NW — Needleman-Wunsch global sequence alignment (DP, memory bound).
//!
//! Classic wavefront dynamic program. Parallelism comes from processing
//! anti-diagonals concurrently (the GPU strategy); floating-point content
//! is negligible, making this one of the paper's low-activity workloads.

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// Needleman-Wunsch benchmark.
#[derive(Debug, Clone)]
pub struct Nw {
    /// Sequence length at scale 1.0.
    pub len: usize,
    /// Gap penalty (positive).
    pub gap: i32,
}

impl Default for Nw {
    fn default() -> Self {
        Self { len: 1024, gap: 2 }
    }
}

impl Nw {
    fn sequence(n: usize, salt: u64) -> Vec<u8> {
        (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0xFF51_AFD7_ED55_8CCD)
                    .wrapping_add(salt);
                ((h >> 33) % 4) as u8 // ACGT alphabet
            })
            .collect()
    }

    /// Fills the DP matrix by anti-diagonals; returns the final row.
    fn align(a: &[u8], b: &[u8], gap: i32) -> Vec<i32> {
        let (n, m) = (a.len(), b.len());
        // score[i][j] laid out row-major, (n+1) x (m+1).
        let mut score = vec![0i32; (n + 1) * (m + 1)];
        for (j, s) in score[..=m].iter_mut().enumerate() {
            *s = -(j as i32) * gap;
        }
        for i in 0..=n {
            score[i * (m + 1)] = -(i as i32) * gap;
        }
        // Anti-diagonal d contains cells (i, j) with i + j = d.
        for d in 2..=(n + m) {
            let lo = d.saturating_sub(m).max(1);
            let hi = d.saturating_sub(1).min(n);
            if lo > hi {
                continue;
            }
            // Compute the diagonal in parallel, then write it back.
            let vals: Vec<(usize, i32)> = (lo..=hi)
                .into_par_iter()
                .map(|i| {
                    let j = d - i;
                    let m1 = m + 1;
                    let sub = if a[i - 1] == b[j - 1] { 3 } else { -1 };
                    let diag = score[(i - 1) * m1 + (j - 1)] + sub;
                    let up = score[(i - 1) * m1 + j] - gap;
                    let left = score[i * m1 + (j - 1)] - gap;
                    (i, diag.max(up).max(left))
                })
                .collect();
            for (i, v) in vals {
                score[i * (m + 1) + (d - i)] = v;
            }
        }
        score[n * (m + 1)..].to_vec()
    }
}

impl Kernel for Nw {
    fn name(&self) -> &'static str {
        "NW"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.len as f64 * scale.sqrt()).round() as usize).max(16);
        timed(|| {
            let a = Self::sequence(n, 1);
            let b = Self::sequence(n, 2);
            let last = Self::align(&a, &b, self.gap);
            let cells = (n * n) as f64;
            let flops = 0.5 * cells; // DP is integer max/add; tiny FP share
            let bytes = 16.0 * cells; // 3 reads + 1 write of 4 B scores
            let checksum: f64 = last.iter().map(|&v| v as f64).sum();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.10,
            kappa_memory: 0.40,
            fp64_ratio: 1.0,
            sm_occupancy: 0.35,
            pcie_tx_mbs: 40.0,
            pcie_rx_mbs: 40.0,
            overhead_frac: 0.10,
            target_seconds: 11.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_score_perfect_match() {
        let a = vec![0u8, 1, 2, 3, 0];
        let last = Nw::align(&a, &a, 2);
        // All matches: 5 * 3.
        assert_eq!(*last.last().unwrap(), 15);
    }

    #[test]
    fn empty_vs_sequence_pays_gaps() {
        let a: Vec<u8> = vec![];
        let b = vec![0u8, 1, 2];
        let last = Nw::align(&a, &b, 2);
        assert_eq!(*last.last().unwrap(), -6);
    }

    #[test]
    fn single_mismatch_scores_substitution() {
        let a = vec![0u8];
        let b = vec![1u8];
        let last = Nw::align(&a, &b, 2);
        // Substitution (-1) beats two gaps (-4).
        assert_eq!(*last.last().unwrap(), -1);
    }

    #[test]
    fn score_is_symmetric() {
        let a = Nw::sequence(40, 1);
        let b = Nw::sequence(40, 2);
        let ab = Nw::align(&a, &b, 2);
        let ba = Nw::align(&b, &a, 2);
        assert_eq!(ab.last(), ba.last());
    }

    #[test]
    fn wavefront_matches_serial_reference() {
        let a = Nw::sequence(30, 3);
        let b = Nw::sequence(25, 4);
        let par = Nw::align(&a, &b, 2);
        // Serial reference.
        let (n, m) = (a.len(), b.len());
        let mut dp = vec![vec![0i32; m + 1]; n + 1];
        for (j, cell) in dp[0].iter_mut().enumerate() {
            *cell = -(j as i32) * 2;
        }
        for (i, row) in dp.iter_mut().enumerate() {
            row[0] = -(i as i32) * 2;
        }
        for i in 1..=n {
            for j in 1..=m {
                let sub = if a[i - 1] == b[j - 1] { 3 } else { -1 };
                dp[i][j] = (dp[i - 1][j - 1] + sub)
                    .max(dp[i - 1][j] - 2)
                    .max(dp[i][j - 1] - 2);
            }
        }
        assert_eq!(par, dp[n]);
    }
}
