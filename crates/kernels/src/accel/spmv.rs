//! SPMV — sparse matrix-vector product in CSR format (memory bound).

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// A CSR sparse matrix.
#[derive(Debug, Clone)]
pub struct Csr {
    /// Row pointers, length `rows + 1`.
    pub row_ptr: Vec<usize>,
    /// Column indices, length `nnz`.
    pub col_idx: Vec<u32>,
    /// Non-zero values, length `nnz`.
    pub values: Vec<f64>,
    /// Number of columns.
    pub cols: usize,
}

impl Csr {
    /// Builds a banded pseudo-random sparse matrix with ~`nnz_per_row`
    /// non-zeros per row.
    pub fn synthetic(n: usize, nnz_per_row: usize) -> Self {
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..n {
            for k in 0..nnz_per_row {
                // Deterministic scatter around the diagonal.
                let off = ((r * 31 + k * 17 + 7) % (4 * nnz_per_row + 1)) as i64
                    - (2 * nnz_per_row) as i64;
                let c = (r as i64 + off).rem_euclid(n as i64) as u32;
                col_idx.push(c);
                values.push(1.0 / (1.0 + (r + k) as f64));
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            row_ptr,
            col_idx,
            values,
            cols: n,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Parallel `y = A x`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        (0..self.rows())
            .into_par_iter()
            .map(|r| {
                let lo = self.row_ptr[r];
                let hi = self.row_ptr[r + 1];
                self.col_idx[lo..hi]
                    .iter()
                    .zip(&self.values[lo..hi])
                    .map(|(&c, &v)| v * x[c as usize])
                    .sum()
            })
            .collect()
    }
}

/// SpMV benchmark.
#[derive(Debug, Clone)]
pub struct Spmv {
    /// Matrix dimension at scale 1.0.
    pub n: usize,
    /// Non-zeros per row.
    pub nnz_per_row: usize,
}

impl Default for Spmv {
    fn default() -> Self {
        Self {
            n: 40_000,
            nnz_per_row: 24,
        }
    }
}

impl Kernel for Spmv {
    fn name(&self) -> &'static str {
        "SPMV"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.n as f64 * scale).round() as usize).max(64);
        timed(|| {
            let a = Csr::synthetic(n, self.nnz_per_row);
            let x: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) * 0.1 + 1.0).collect();
            let y = a.spmv(&x);
            let nnz = a.nnz() as f64;
            let flops = 2.0 * nnz;
            // value (8) + column index (4) + gathered x (8, poor reuse) per
            // nnz, plus y write.
            let bytes = 20.0 * nnz + 8.0 * n as f64;
            let checksum: f64 = y.iter().sum();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.35,
            kappa_memory: 0.55, // gathers waste bandwidth
            fp64_ratio: 1.0,
            sm_occupancy: 0.85,
            pcie_tx_mbs: 70.0,
            pcie_rx_mbs: 30.0,
            overhead_frac: 0.03,
            target_seconds: 15.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_vector() {
        let a = Csr {
            row_ptr: vec![0, 1, 2, 3],
            col_idx: vec![0, 1, 2],
            values: vec![1.0, 1.0, 1.0],
            cols: 3,
        };
        let y = a.spmv(&[4.0, 5.0, 6.0]);
        assert_eq!(y, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn matches_dense_reference() {
        let n = 50;
        let a = Csr::synthetic(n, 5);
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
        let y = a.spmv(&x);
        // Dense reference.
        let mut dense = vec![vec![0.0; n]; n];
        for (r, dense_row) in dense.iter_mut().enumerate() {
            for k in a.row_ptr[r]..a.row_ptr[r + 1] {
                dense_row[a.col_idx[k] as usize] += a.values[k];
            }
        }
        for r in 0..n {
            let expect: f64 = dense[r].iter().zip(&x).map(|(&m, &v)| m * v).sum();
            assert!((y[r] - expect).abs() < 1e-10);
        }
    }

    #[test]
    fn synthetic_has_requested_nnz() {
        let a = Csr::synthetic(100, 7);
        assert_eq!(a.nnz(), 700);
        assert_eq!(a.rows(), 100);
        assert!(a.col_idx.iter().all(|&c| (c as usize) < 100));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_vector_length_panics() {
        let a = Csr::synthetic(10, 3);
        let _ = a.spmv(&[1.0; 5]);
    }

    #[test]
    fn is_memory_bound() {
        let s = Spmv {
            n: 1000,
            nnz_per_row: 8,
        }
        .run(1.0);
        assert!(s.intensity() < 0.2);
    }
}
