//! LUD — dense LU decomposition without pivoting (Rodinia/SPEC lud).

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// LU-decomposition benchmark.
#[derive(Debug, Clone)]
pub struct Lud {
    /// Matrix edge at scale 1.0.
    pub n: usize,
}

impl Default for Lud {
    fn default() -> Self {
        Self { n: 192 }
    }
}

impl Lud {
    /// Diagonally dominant test matrix (guarantees pivot-free stability).
    fn matrix(n: usize) -> Vec<f64> {
        (0..n * n)
            .map(|i| {
                let (r, c) = (i / n, i % n);
                if r == c {
                    n as f64 + 1.0
                } else {
                    let h = (i as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
                    ((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5
                }
            })
            .collect()
    }

    /// In-place right-looking LU (Doolittle, unit lower diagonal), trailing
    /// updates parallel over rows. Returns FLOPs performed.
    fn decompose(a: &mut [f64], n: usize) -> f64 {
        let mut flops = 0.0;
        for k in 0..n {
            let pivot = a[k * n + k];
            assert!(pivot.abs() > 1e-12, "zero pivot at {k}");
            // Column scale below the pivot.
            for r in k + 1..n {
                a[r * n + k] /= pivot;
            }
            flops += (n - k - 1) as f64;
            // Trailing submatrix update, parallel over rows.
            let (pivot_rows, trailing) = a.split_at_mut((k + 1) * n);
            let pivot_row = &pivot_rows[k * n..(k + 1) * n];
            trailing.par_chunks_mut(n).for_each(|row| {
                let l = row[k];
                for c in k + 1..n {
                    row[c] -= l * pivot_row[c];
                }
            });
            flops += 2.0 * ((n - k - 1) * (n - k - 1)) as f64;
        }
        flops
    }
}

impl Kernel for Lud {
    fn name(&self) -> &'static str {
        "LUD"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.n as f64 * scale.cbrt()).round() as usize).max(8);
        timed(|| {
            let mut a = Self::matrix(n);
            let flops = Self::decompose(&mut a, n);
            let nf = n as f64;
            // Blocked GPU LU streams the trailing matrix once per panel of
            // width 32.
            let bytes = 8.0 * nf * nf * (nf / 32.0) / 3.0;
            let checksum: f64 = a.iter().map(|v| v.abs()).sum();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.50, // panel factorization limits utilization
            kappa_memory: 0.55,
            fp64_ratio: 1.0,
            sm_occupancy: 0.50,
            pcie_tx_mbs: 45.0,
            pcie_rx_mbs: 45.0,
            overhead_frac: 0.06,
            target_seconds: 17.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rebuilds A from the packed LU factors and compares.
    fn reconstruct(lu: &[f64], n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                let mut acc = 0.0;
                for k in 0..=r.min(c) {
                    let l = if k == r { 1.0 } else { lu[r * n + k] };
                    let u = if k <= c { lu[k * n + c] } else { 0.0 };
                    if k < r && k > c {
                        continue;
                    }
                    acc += l * u;
                }
                out[r * n + c] = acc;
            }
        }
        out
    }

    #[test]
    fn lu_reconstructs_original() {
        let n = 24;
        let orig = Lud::matrix(n);
        let mut lu = orig.clone();
        Lud::decompose(&mut lu, n);
        let rebuilt = reconstruct(&lu, n);
        for (a, b) in orig.iter().zip(&rebuilt) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn identity_decomposes_to_identity() {
        let n = 8;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        Lud::decompose(&mut a, n);
        for r in 0..n {
            for c in 0..n {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((a[r * n + c] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn flop_count_is_two_thirds_n_cubed() {
        let n = 64;
        let mut a = Lud::matrix(n);
        let flops = Lud::decompose(&mut a, n);
        let expect = 2.0 / 3.0 * (n as f64).powi(3);
        assert!((flops - expect).abs() / expect < 0.1, "{flops} vs {expect}");
    }

    #[test]
    fn known_2x2_factors() {
        // A = [[4, 3], [6, 3]] => L21 = 1.5, U = [[4, 3], [0, -1.5]].
        let mut a = vec![4.0, 3.0, 6.0, 3.0];
        Lud::decompose(&mut a, 2);
        assert!((a[2] - 1.5).abs() < 1e-12);
        assert!((a[3] + 1.5).abs() < 1e-12);
    }
}
