//! CUTCP — cutoff Coulombic potential on a 3D lattice (compute bound).
//!
//! Accumulates `q / r` contributions from atoms within a cutoff radius onto
//! grid points, using a cell list to bound the neighbour search — the
//! Parboil/SPEC molecular-modelling kernel.

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// Cutoff-Coulomb benchmark.
#[derive(Debug, Clone)]
pub struct Cutcp {
    /// Grid edge (points) at scale 1.0.
    pub grid: usize,
    /// Number of atoms.
    pub atoms: usize,
    /// Cutoff radius in grid units.
    pub cutoff: f64,
}

impl Default for Cutcp {
    fn default() -> Self {
        Self {
            grid: 24,
            atoms: 1000,
            cutoff: 4.0,
        }
    }
}

struct Atom {
    x: f64,
    y: f64,
    z: f64,
    q: f64,
}

fn atoms_in_box(n: usize, edge: f64) -> Vec<Atom> {
    (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(9);
            let f = |s: u32| ((h >> s) & 0xFFFFF) as f64 / 1048576.0;
            Atom {
                x: f(0) * edge,
                y: f(20) * edge,
                z: f(40) * edge,
                q: if i % 2 == 0 { 1.0 } else { -1.0 },
            }
        })
        .collect()
}

impl Cutcp {
    fn potential(&self, grid: usize, atoms: &[Atom]) -> (Vec<f64>, u64) {
        let cutoff2 = self.cutoff * self.cutoff;
        let plane = grid * grid;
        let interactions: Vec<(Vec<f64>, u64)> = (0..grid)
            .into_par_iter()
            .map(|z| {
                let mut slab = vec![0.0f64; plane];
                let mut count = 0u64;
                for y in 0..grid {
                    for x in 0..grid {
                        let (gx, gy, gz) = (x as f64, y as f64, z as f64);
                        let mut pot = 0.0;
                        for a in atoms {
                            let dx = a.x - gx;
                            let dy = a.y - gy;
                            let dz = a.z - gz;
                            let r2 = dx * dx + dy * dy + dz * dz;
                            if r2 < cutoff2 && r2 > 1e-12 {
                                pot += a.q / r2.sqrt();
                                count += 1;
                            }
                        }
                        slab[y * grid + x] = pot;
                    }
                }
                (slab, count)
            })
            .collect();
        let mut field = Vec::with_capacity(grid * plane);
        let mut total = 0u64;
        for (slab, c) in interactions {
            field.extend(slab);
            total += c;
        }
        (field, total)
    }
}

impl Kernel for Cutcp {
    fn name(&self) -> &'static str {
        "CUTCP"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let grid = ((self.grid as f64 * scale.cbrt()).round() as usize).max(4);
        timed(|| {
            let atoms = atoms_in_box(self.atoms, grid as f64);
            let (field, within_cutoff) = self.potential(grid, &atoms);
            let tested = (grid * grid * grid * self.atoms) as u64;
            // Distance test ~8 flops each; hits add rsqrt+acc ~6 more.
            let flops = 8.0 * tested as f64 + 6.0 * within_cutoff as f64;
            let bytes =
                32.0 * self.atoms as f64 * grid as f64 / 8.0 + 8.0 * (grid * grid * grid) as f64;
            let checksum: f64 = field.iter().map(|v| v.abs()).sum();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.75,
            kappa_memory: 0.55,
            fp64_ratio: 0.0,
            sm_occupancy: 0.50,
            pcie_tx_mbs: 20.0,
            pcie_rx_mbs: 20.0,
            overhead_frac: 0.03,
            target_seconds: 21.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_atom_potential_is_coulomb() {
        let k = Cutcp {
            grid: 8,
            atoms: 1,
            cutoff: 100.0,
        };
        let atoms = vec![Atom {
            x: 0.0,
            y: 0.0,
            z: 0.0,
            q: 2.0,
        }];
        let (field, _) = k.potential(8, &atoms);
        // Grid point (1,0,0) is at distance 1: potential 2.0.
        assert!((field[1] - 2.0).abs() < 1e-12);
        // Grid point (0,3,0): distance 3 -> 2/3.
        assert!((field[3 * 8] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cutoff_excludes_far_atoms() {
        let k = Cutcp {
            grid: 8,
            atoms: 1,
            cutoff: 2.0,
        };
        let atoms = vec![Atom {
            x: 0.0,
            y: 0.0,
            z: 0.0,
            q: 1.0,
        }];
        let (field, count) = k.potential(8, &atoms);
        assert_eq!(field[5], 0.0); // distance 5 > cutoff 2
        assert!(count > 0);
    }

    #[test]
    fn opposite_charges_cancel_at_midpoint() {
        let k = Cutcp {
            grid: 9,
            atoms: 2,
            cutoff: 100.0,
        };
        let atoms = vec![
            Atom {
                x: 2.0,
                y: 4.0,
                z: 4.0,
                q: 1.0,
            },
            Atom {
                x: 6.0,
                y: 4.0,
                z: 4.0,
                q: -1.0,
            },
        ];
        let (field, _) = k.potential(9, &atoms);
        let mid = 4 * 81 + 4 * 9 + 4;
        assert!(field[mid].abs() < 1e-12);
    }

    #[test]
    fn run_is_deterministic() {
        let k = Cutcp {
            grid: 8,
            atoms: 50,
            cutoff: 3.0,
        };
        assert_eq!(k.run(1.0).checksum, k.run(1.0).checksum);
    }
}
