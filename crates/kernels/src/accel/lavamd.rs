//! LAVAMD — particle potentials within neighbouring 3D boxes (compute bound).
//!
//! Particles live in a lattice of boxes; each particle interacts with all
//! particles in its own and the 26 adjacent boxes through a short-range
//! exponential potential — the Rodinia/SPEC molecular-dynamics kernel.

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// LavaMD benchmark.
#[derive(Debug, Clone)]
pub struct Lavamd {
    /// Boxes per edge at scale 1.0.
    pub boxes: usize,
    /// Particles per box.
    pub per_box: usize,
}

impl Default for Lavamd {
    fn default() -> Self {
        Self {
            boxes: 4,
            per_box: 32,
        }
    }
}

#[derive(Clone, Copy)]
struct P {
    x: f64,
    y: f64,
    z: f64,
    q: f64,
}

impl Lavamd {
    fn particles(boxes: usize, per_box: usize) -> Vec<Vec<P>> {
        let mut all = Vec::with_capacity(boxes * boxes * boxes);
        for b in 0..boxes * boxes * boxes {
            let bx = (b % boxes) as f64;
            let by = ((b / boxes) % boxes) as f64;
            let bz = (b / (boxes * boxes)) as f64;
            let ps = (0..per_box)
                .map(|i| {
                    let h = ((b * per_box + i) as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
                    let f = |s: u32| ((h >> s) & 0xFFFF) as f64 / 65536.0;
                    P {
                        x: bx + f(0),
                        y: by + f(16),
                        z: bz + f(32),
                        q: f(48) - 0.5,
                    }
                })
                .collect();
            all.push(ps);
        }
        all
    }

    /// Computes per-particle potential energy; returns (potentials, pairs).
    fn energy(boxes: usize, cells: &[Vec<P>], a2: f64) -> (Vec<f64>, u64) {
        let idx = |x: i64, y: i64, z: i64| -> Option<usize> {
            let b = boxes as i64;
            if x < 0 || y < 0 || z < 0 || x >= b || y >= b || z >= b {
                None
            } else {
                Some((z * b * b + y * b + x) as usize)
            }
        };
        let results: Vec<(Vec<f64>, u64)> = (0..cells.len())
            .into_par_iter()
            .map(|home| {
                let hx = (home % boxes) as i64;
                let hy = ((home / boxes) % boxes) as i64;
                let hz = (home / (boxes * boxes)) as i64;
                let mut pots = vec![0.0f64; cells[home].len()];
                let mut pairs = 0u64;
                for dz in -1..=1 {
                    for dy in -1..=1 {
                        for dx in -1..=1 {
                            let Some(nb) = idx(hx + dx, hy + dy, hz + dz) else {
                                continue;
                            };
                            for (i, pi) in cells[home].iter().enumerate() {
                                for pj in &cells[nb] {
                                    let rx = pi.x - pj.x;
                                    let ry = pi.y - pj.y;
                                    let rz = pi.z - pj.z;
                                    let r2 = rx * rx + ry * ry + rz * rz;
                                    if r2 > 1e-12 {
                                        pots[i] += pi.q * pj.q * (-a2 * r2).exp();
                                        pairs += 1;
                                    }
                                }
                            }
                        }
                    }
                }
                (pots, pairs)
            })
            .collect();
        let mut pots = Vec::new();
        let mut pairs = 0;
        for (p, c) in results {
            pots.extend(p);
            pairs += c;
        }
        (pots, pairs)
    }
}

impl Kernel for Lavamd {
    fn name(&self) -> &'static str {
        "LAVAMD"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let boxes = ((self.boxes as f64 * scale.cbrt()).round() as usize).max(2);
        timed(|| {
            let cells = Self::particles(boxes, self.per_box);
            let (pots, pairs) = Self::energy(boxes, &cells, 0.5);
            let flops = 14.0 * pairs as f64;
            // GPU traffic model: home box lives in shared memory, the 26
            // neighbour boxes stream from DRAM each outer tile -> intensity
            // sits just above the fp64 ridge (~5.2 FLOP/byte).
            let bytes = flops / 5.2;
            let checksum: f64 = pots.iter().map(|v| v.abs()).sum();
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.65,
            kappa_memory: 0.60,
            fp64_ratio: 1.0,
            sm_occupancy: 0.40,
            pcie_tx_mbs: 15.0,
            pcie_rx_mbs: 15.0,
            overhead_frac: 0.04,
            target_seconds: 23.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_particle_potential_is_symmetric() {
        let cells = vec![vec![
            P {
                x: 0.0,
                y: 0.0,
                z: 0.0,
                q: 1.0,
            },
            P {
                x: 0.5,
                y: 0.0,
                z: 0.0,
                q: 2.0,
            },
        ]];
        let (pots, pairs) = Lavamd::energy(1, &cells, 0.5);
        assert_eq!(pairs, 2); // each sees the other
        let expect = 2.0 * (-0.5f64 * 0.25).exp();
        assert!((pots[0] - expect).abs() < 1e-12);
        assert!((pots[1] - expect).abs() < 1e-12);
    }

    #[test]
    fn interaction_decays_with_distance() {
        let near = vec![vec![
            P {
                x: 0.0,
                y: 0.0,
                z: 0.0,
                q: 1.0,
            },
            P {
                x: 0.1,
                y: 0.0,
                z: 0.0,
                q: 1.0,
            },
        ]];
        let far = vec![vec![
            P {
                x: 0.0,
                y: 0.0,
                z: 0.0,
                q: 1.0,
            },
            P {
                x: 0.9,
                y: 0.0,
                z: 0.0,
                q: 1.0,
            },
        ]];
        let (pn, _) = Lavamd::energy(1, &near, 0.5);
        let (pf, _) = Lavamd::energy(1, &far, 0.5);
        assert!(pn[0] > pf[0]);
    }

    #[test]
    fn pair_count_includes_neighbour_boxes() {
        let cells = Lavamd::particles(2, 4);
        let (_, pairs) = Lavamd::energy(2, &cells, 0.5);
        // 8 boxes, all mutually adjacent in a 2^3 lattice: every particle
        // pairs with all 31 others.
        assert_eq!(pairs, 32 * 31);
    }

    #[test]
    fn deterministic() {
        let k = Lavamd {
            boxes: 2,
            per_box: 8,
        };
        assert_eq!(k.run(1.0).checksum, k.run(1.0).checksum);
    }
}
