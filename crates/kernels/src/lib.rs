//! Instrumented parallel mini-kernels and workload models.
//!
//! The paper trains on 21 GPU benchmarks (DGEMM, STREAM and the 19-workload
//! SPEC ACCEL suite) and evaluates on six real applications. We obviously
//! cannot run CUDA binaries here, but a workload enters the paper's
//! methodology only through (a) its *work volume* — FLOPs and DRAM bytes —
//! and (b) its *efficiency profile* on the GPU rooflines. So this crate:
//!
//! 1. implements each benchmark as a **real, multi-threaded CPU kernel**
//!    (rayon) instrumented with exact FLOP/byte counts and a correctness
//!    check — [`micro`] (DGEMM, STREAM) and [`accel`] (the 19 SPEC-ACCEL
//!    analogues, one module each);
//! 2. attaches to each kernel a [`workload::GpuProfile`] — the calibrated
//!    roofline efficiencies it achieves on an A100-class GPU — and derives
//!    a [`gpu_model::WorkloadSignature`] from an actual instrumented run
//!    ([`workload::Kernel::signature_for`]);
//! 3. models the six real evaluation applications (LAMMPS, NAMD, GROMACS,
//!    LSTM, BERT, ResNet50) as multi-phase workloads ([`apps`]) with the
//!    pathologies the paper reports (e.g. GROMACS's DVFS-insensitive time).
//!
//! [`suite::training_suite`] returns the 21 training benchmarks,
//! [`apps::evaluation_apps`] the six evaluation applications (Table 2).

pub mod accel;
pub mod apps;
pub mod micro;
pub mod stats;
pub mod suite;
pub mod workload;

pub use stats::KernelStats;
pub use workload::{GpuProfile, Kernel};
