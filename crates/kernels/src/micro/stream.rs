//! STREAM — the McCalpin memory-bandwidth benchmark (memory bound).
//!
//! Implements the four canonical STREAM kernels (copy, scale, add, triad)
//! over parallel slices. Byte counts follow STREAM's own accounting:
//! 16 B/elem for copy and scale, 24 B/elem for add and triad.

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rayon::prelude::*;

/// STREAM benchmark with a configurable base vector length.
#[derive(Debug, Clone)]
pub struct Stream {
    /// Elements per array at scale 1.0.
    pub len: usize,
}

impl Default for Stream {
    fn default() -> Self {
        Self { len: 1 << 20 }
    }
}

impl Stream {
    /// Runs one sweep of copy/scale/add/triad, returning
    /// `(flops, bytes, checksum)`.
    fn sweep(n: usize) -> (f64, f64, f64) {
        let scalar = 3.0f64;
        let b: Vec<f64> = (0..n).map(|i| (i % 97) as f64 * 0.5 + 1.0).collect();
        let c: Vec<f64> = (0..n).map(|i| (i % 89) as f64 * 0.25 + 2.0).collect();
        let mut a = vec![0.0f64; n];

        // copy: a = c
        a.par_iter_mut()
            .zip(c.par_iter())
            .for_each(|(x, &y)| *x = y);
        // scale: a = scalar * b  (STREAM scale writes b from c; the traffic
        // accounting is what matters)
        a.par_iter_mut()
            .zip(b.par_iter())
            .for_each(|(x, &y)| *x = scalar * y);
        // add: a = b + c
        a.par_iter_mut()
            .zip(b.par_iter().zip(c.par_iter()))
            .for_each(|(x, (&y, &z))| *x = y + z);
        // triad: a = b + scalar * c
        a.par_iter_mut()
            .zip(b.par_iter().zip(c.par_iter()))
            .for_each(|(x, (&y, &z))| *x = y + scalar * z);

        let checksum: f64 = a.par_iter().sum();
        let nf = n as f64;
        let flops = nf + 2.0 * nf + nf; // scale 1, add 1, triad 2 per elem
        let bytes = (16.0 + 16.0 + 24.0 + 24.0) * nf;
        (flops, bytes, checksum)
    }
}

impl Kernel for Stream {
    fn name(&self) -> &'static str {
        "STREAM"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.len as f64 * scale).round() as usize).max(64);
        timed(|| Self::sweep(n))
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.50,
            kappa_memory: 0.88, // GPU-STREAM reaches ~88% of peak HBM bw
            fp64_ratio: 1.0,
            sm_occupancy: 0.90,
            pcie_tx_mbs: 40.0,
            pcie_rx_mbs: 20.0,
            overhead_frac: 0.03,
            target_seconds: 20.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::DeviceSpec;

    #[test]
    fn triad_result_is_correct() {
        // After the full sweep, a = b + 3 c elementwise.
        let n = 1000;
        let (_, _, checksum) = Stream::sweep(n);
        let expect: f64 = (0..n)
            .map(|i| ((i % 97) as f64 * 0.5 + 1.0) + 3.0 * ((i % 89) as f64 * 0.25 + 2.0))
            .sum();
        assert!((checksum - expect).abs() < 1e-6 * expect.abs());
    }

    #[test]
    fn byte_count_follows_stream_accounting() {
        let k = Stream { len: 1024 };
        let s = k.run(1.0);
        assert_eq!(s.bytes, 80.0 * 1024.0);
        assert_eq!(s.flops, 4.0 * 1024.0);
    }

    #[test]
    fn is_memory_bound_on_ga100() {
        let spec = DeviceSpec::ga100();
        let sig = Stream::default().signature(&spec);
        // Far below the A100 fp64 ridge point.
        assert!(sig.arithmetic_intensity() < 0.5);
    }

    #[test]
    fn draws_about_half_tdp_at_max_clock() {
        let spec = DeviceSpec::ga100();
        let sig = Stream::default().signature(&spec);
        let p = gpu_model::model::power(&spec, &sig, spec.max_core_mhz);
        let frac = p / spec.tdp_w;
        assert!((0.40..=0.60).contains(&frac), "STREAM draws {frac:.2} TDP");
    }

    #[test]
    fn insensitive_to_downclocking() {
        let spec = DeviceSpec::ga100();
        let sig = Stream::default().signature(&spec);
        let t_hi = gpu_model::model::exec_time(&spec, &sig, 1410.0);
        let t_mid = gpu_model::model::exec_time(&spec, &sig, 1005.0);
        assert!(t_mid / t_hi < 1.10);
    }

    #[test]
    fn scale_is_linear() {
        let k = Stream { len: 4096 };
        let s1 = k.run(1.0);
        let s2 = k.run(2.0);
        assert!((s2.bytes / s1.bytes - 2.0).abs() < 0.01);
    }
}
