//! Micro-benchmarks: DGEMM (compute bound) and STREAM (memory bound).

pub mod dgemm;
pub mod stream;

pub use dgemm::Dgemm;
pub use stream::Stream;
