//! DGEMM — dense double-precision matrix multiply (compute bound).
//!
//! The canonical compute-intensive workload of the paper's motivation
//! section. The CPU run uses the `tensor` crate's blocked parallel matmul;
//! FLOPs are the exact `2 n^3` of the triple loop and the byte count models
//! a tiled GPU implementation that re-reads each operand once per tile
//! sweep.

use crate::stats::{timed, KernelStats};
use crate::workload::{GpuProfile, Kernel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{init, matmul};

/// Tile edge assumed for the GPU DRAM-traffic model (cuBLAS-class blocking
/// including L2 reuse).
const GPU_TILE: f64 = 256.0;

/// DGEMM benchmark with a configurable base matrix size.
#[derive(Debug, Clone)]
pub struct Dgemm {
    /// Matrix edge at scale 1.0.
    pub n: usize,
}

impl Default for Dgemm {
    fn default() -> Self {
        Self { n: 192 }
    }
}

impl Kernel for Dgemm {
    fn name(&self) -> &'static str {
        "DGEMM"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let n = ((self.n as f64 * scale.cbrt()).round() as usize).max(8);
        timed(|| {
            let mut rng = StdRng::seed_from_u64(0xD6E3);
            let a = init::uniform(n, n, -1.0, 1.0, &mut rng);
            let b = init::uniform(n, n, -1.0, 1.0, &mut rng);
            let c = matmul::matmul(&a, &b).expect("square operands");
            let checksum: f64 = c.as_slice().iter().sum();
            let nf = n as f64;
            let flops = 2.0 * nf * nf * nf;
            // Tiled GPU traffic: each of A and B is streamed once per tile
            // sweep (at least once), C is written once.
            let bytes = 8.0 * (2.0 * nf * nf * (nf / GPU_TILE).max(1.0) + nf * nf);
            (flops, bytes, checksum)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.95, // cuBLAS runs near peak
            kappa_memory: 0.60,
            fp64_ratio: 1.0,
            sm_occupancy: 0.45,
            pcie_tx_mbs: 120.0,
            pcie_rx_mbs: 60.0,
            overhead_frac: 0.02,
            target_seconds: 25.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::DeviceSpec;

    #[test]
    fn result_matches_naive_reference() {
        // The kernel's correctness is the tensor crate's, but verify the
        // checksum path end to end on a tiny instance.
        let mut rng = StdRng::seed_from_u64(0xD6E3);
        let n = 16;
        let a = init::uniform(n, n, -1.0, 1.0, &mut rng);
        let b = init::uniform(n, n, -1.0, 1.0, &mut rng);
        let fast = matmul::matmul(&a, &b).unwrap();
        let slow = matmul::matmul_naive(&a, &b).unwrap();
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn flop_count_is_2n3() {
        let k = Dgemm { n: 32 };
        let s = k.run(1.0);
        assert_eq!(s.flops, 2.0 * 32.0f64.powi(3));
    }

    #[test]
    fn is_compute_bound_on_ga100() {
        let spec = DeviceSpec::ga100();
        let sig = Dgemm::default().signature(&spec);
        // High arithmetic intensity: well past the A100 ridge point
        // (~4.8 FLOP/byte fp64).
        assert!(sig.arithmetic_intensity() > 10.0);
    }

    #[test]
    fn scale_grows_work_cubically_in_edge() {
        let k = Dgemm { n: 64 };
        let s1 = k.run(1.0);
        let s8 = k.run(8.0); // edge doubles
        assert!((s8.flops / s1.flops - 8.0).abs() < 0.2);
    }

    #[test]
    fn deterministic_checksum() {
        let k = Dgemm { n: 48 };
        assert_eq!(k.run(1.0).checksum, k.run(1.0).checksum);
    }

    #[test]
    fn signature_draws_near_tdp_at_max_clock() {
        let spec = DeviceSpec::ga100();
        let sig = Dgemm::default().signature(&spec);
        let p = gpu_model::model::power(&spec, &sig, spec.max_core_mhz);
        assert!(p > 0.85 * spec.tdp_w, "DGEMM at fmax draws {p:.0} W");
    }
}
