//! The [`Kernel`] trait: a real CPU kernel plus its GPU efficiency profile.

use crate::stats::KernelStats;
use gpu_model::{DeviceSpec, PhasedWorkload, SignatureBuilder, WorkloadSignature};
use serde::{Deserialize, Serialize};

/// How a kernel behaves on an A100-class GPU: its roofline efficiencies and
/// run-shape constants.
///
/// These are *calibration* constants (the CUDA implementations of the SPEC
/// ACCEL workloads achieve characteristic fractions of peak); the work
/// volume itself comes from the instrumented CPU run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuProfile {
    /// Fraction of peak FLOP rate achieved when compute bound.
    pub kappa_compute: f64,
    /// Fraction of saturated bandwidth achieved when memory bound.
    pub kappa_memory: f64,
    /// FP64 fraction of floating-point work (FP32 otherwise).
    pub fp64_ratio: f64,
    /// Achieved SM occupancy.
    pub sm_occupancy: f64,
    /// PCIe transmit rate, MB/s.
    pub pcie_tx_mbs: f64,
    /// PCIe receive rate, MB/s.
    pub pcie_rx_mbs: f64,
    /// Fraction of wall time at the default clock that is DVFS-insensitive
    /// (host work, kernel launches).
    pub overhead_frac: f64,
    /// Wall time the benchmark targets at the default clock, seconds. The
    /// benchmark repeats its kernel to fill this (SPEC ACCEL workloads run
    /// for tens of seconds).
    pub target_seconds: f64,
}

impl GpuProfile {
    /// Validates profile invariants.
    pub fn validate(&self) -> Result<(), String> {
        for (v, name) in [
            (self.kappa_compute, "kappa_compute"),
            (self.kappa_memory, "kappa_memory"),
        ] {
            if !(0.0 < v && v <= 1.0) {
                return Err(format!("{name} must be in (0,1], got {v}"));
            }
        }
        if !(0.0..=1.0).contains(&self.fp64_ratio) {
            return Err(format!("fp64_ratio out of range: {}", self.fp64_ratio));
        }
        if !(0.0..=1.0).contains(&self.sm_occupancy) {
            return Err(format!("sm_occupancy out of range: {}", self.sm_occupancy));
        }
        if !(0.0..=0.95).contains(&self.overhead_frac) {
            return Err(format!(
                "overhead_frac out of range: {}",
                self.overhead_frac
            ));
        }
        if self.target_seconds <= 0.0 {
            return Err("target_seconds must be positive".into());
        }
        Ok(())
    }
}

/// A benchmark kernel: a real CPU computation with exact operation counts,
/// plus the profile describing its GPU-side behaviour.
pub trait Kernel: Send + Sync {
    /// Benchmark name as it appears in the paper's Table 2.
    fn name(&self) -> &'static str;

    /// Executes the kernel once at `scale` (a linear problem-size knob with
    /// 1.0 = the default size) and returns exact operation counts.
    fn run(&self, scale: f64) -> KernelStats;

    /// The kernel's GPU efficiency profile.
    fn profile(&self) -> GpuProfile;

    /// Derives the GPU workload signature for this benchmark on `spec`:
    /// runs the instrumented kernel, then scales the per-iteration work so
    /// the benchmark fills `profile().target_seconds` at the default clock
    /// (benchmarks loop their kernel; SPEC ACCEL runs for tens of seconds).
    fn signature_for(&self, spec: &DeviceSpec, scale: f64) -> WorkloadSignature {
        let profile = self.profile();
        profile
            .validate()
            .unwrap_or_else(|e| panic!("{}: invalid GPU profile: {e}", self.name()));
        let stats = self.run(scale);
        assert!(
            stats.flops > 0.0 || stats.bytes > 0.0,
            "{}: kernel did no measurable work",
            self.name()
        );

        // Single-iteration GPU time at the default clock, from the rooflines.
        let peak_flops = spec.peak_gflops_for_mix(profile.fp64_ratio) * 1e9;
        let t_compute = stats.flops / (peak_flops * profile.kappa_compute);
        let t_memory = stats.bytes / (spec.peak_bw_gbs * 1e9 * profile.kappa_memory);
        let t_iter = t_compute.max(t_memory).max(1e-9);

        let kernel_budget = profile.target_seconds * (1.0 - profile.overhead_frac);
        let repeats = (kernel_budget / t_iter).max(1.0);

        SignatureBuilder::new(self.name())
            .flops(stats.flops * repeats)
            .bytes(stats.bytes * repeats)
            .overhead_s(profile.target_seconds * profile.overhead_frac)
            .kappa_compute(profile.kappa_compute)
            .kappa_memory(profile.kappa_memory)
            .fp64_ratio(profile.fp64_ratio)
            .sm_occupancy(profile.sm_occupancy)
            .pcie_mbs(profile.pcie_tx_mbs, profile.pcie_rx_mbs)
            .build()
    }

    /// Convenience: the signature at the default problem size.
    fn signature(&self, spec: &DeviceSpec) -> WorkloadSignature {
        self.signature_for(spec, 1.0)
    }

    /// The benchmark as a single-phase [`PhasedWorkload`].
    fn workload(&self, spec: &DeviceSpec) -> PhasedWorkload {
        PhasedWorkload::single(self.signature(spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;

    impl Kernel for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn run(&self, scale: f64) -> KernelStats {
            KernelStats::new(1.0e9 * scale, 1.0e8 * scale, 42.0, 0.001)
        }
        fn profile(&self) -> GpuProfile {
            GpuProfile {
                kappa_compute: 0.8,
                kappa_memory: 0.8,
                fp64_ratio: 1.0,
                sm_occupancy: 0.5,
                pcie_tx_mbs: 10.0,
                pcie_rx_mbs: 10.0,
                overhead_frac: 0.05,
                target_seconds: 20.0,
            }
        }
    }

    #[test]
    fn signature_hits_target_runtime_at_default_clock() {
        let spec = DeviceSpec::ga100();
        let k = Fake;
        let sig = k.signature(&spec);
        let t = gpu_model::model::exec_time(&spec, &sig, spec.max_core_mhz);
        let target = k.profile().target_seconds;
        assert!(
            (t - target).abs() / target < 0.05,
            "runtime {t:.2}s vs target {target}s"
        );
    }

    #[test]
    fn signature_preserves_intensity() {
        let spec = DeviceSpec::ga100();
        let k = Fake;
        let stats = k.run(1.0);
        let sig = k.signature(&spec);
        assert!((sig.arithmetic_intensity() - stats.intensity()).abs() < 1e-9);
    }

    #[test]
    fn scale_changes_counts_not_intensity() {
        let k = Fake;
        let s1 = k.run(1.0);
        let s4 = k.run(4.0);
        assert_eq!(s4.flops, 4.0 * s1.flops);
        assert!((s4.intensity() - s1.intensity()).abs() < 1e-12);
    }

    #[test]
    fn overhead_matches_profile_fraction() {
        let spec = DeviceSpec::ga100();
        let k = Fake;
        let sig = k.signature(&spec);
        let p = k.profile();
        assert!((sig.overhead_s - p.target_seconds * p.overhead_frac).abs() < 1e-9);
    }

    #[test]
    fn profile_validation_catches_bad_kappa() {
        let mut p = Fake.profile();
        p.kappa_compute = 0.0;
        assert!(p.validate().is_err());
        p.kappa_compute = 0.5;
        p.overhead_frac = 0.99;
        assert!(p.validate().is_err());
    }

    #[test]
    fn workload_is_single_phase() {
        let spec = DeviceSpec::ga100();
        let w = Fake.workload(&spec);
        assert_eq!(w.phases.len(), 1);
        assert_eq!(w.name, "fake");
    }
}
