//! Structurally validates a `--trace-out` Chrome trace-event JSON file.
//!
//! Used by `scripts/check.sh` as the smoke gate for
//! `dvfs train/batch --trace-out <path>`: the file must parse, every
//! `B` must have a matching `E` on its tid (stack discipline), `ts`
//! must be monotone per tid, every flow event (`s`/`f`) must carry a
//! numeric `id`, and — optionally — the trace must span at least
//! `--min-tids N` distinct threads, contain an event whose name
//! includes each `--require NAME` (e.g. `shard_worker`,
//! `campaign_worker`), and contain, for each `--require-flow NAME`, at
//! least one flow id with both a start and an end under that name (the
//! pair Perfetto draws as an arrow).
//!
//! ```text
//! cargo run -p obs --example validate_trace -- trace.json \
//!     --min-tids 3 --require shard_worker --require-flow serve.req
//! ```

use serde::value::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Options {
    path: String,
    min_tids: usize,
    require: Vec<String>,
    require_flow: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut min_tids = 1;
    let mut require = Vec::new();
    let mut require_flow = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-tids" => {
                min_tids = args
                    .next()
                    .ok_or("--min-tids needs a value")?
                    .parse()
                    .map_err(|e| format!("--min-tids: {e}"))?;
            }
            "--require" => require.push(args.next().ok_or("--require needs a value")?),
            "--require-flow" => {
                require_flow.push(args.next().ok_or("--require-flow needs a value")?)
            }
            other if !other.starts_with("--") && path.is_none() => path = Some(arg),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Options {
        path: path.ok_or(
            "usage: validate_trace <trace.json> [--min-tids N] [--require NAME] \
             [--require-flow NAME]",
        )?,
        min_tids,
        require,
        require_flow,
    })
}

fn field<'a>(event: &'a Value, key: &str) -> Result<&'a Value, String> {
    event.get(key).ok_or(format!("event missing `{key}`"))
}

fn check(parsed: &Value, opts: &Options) -> Result<usize, String> {
    let events = parsed
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing `traceEvents` array")?;
    if events.is_empty() {
        return Err("trace contains no events".into());
    }

    // Per-tid state: open-span stack (B names) and last timestamp.
    let mut open: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut seen_names: Vec<String> = Vec::new();
    // Flow accounting: ids seen starting/ending per flow name.
    let mut flow_starts: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut flow_ends: BTreeMap<String, Vec<u64>> = BTreeMap::new();

    for (i, event) in events.iter().enumerate() {
        let ph = field(event, "ph")?
            .as_str()
            .ok_or(format!("event {i}: `ph` is not a string"))?
            .to_string();
        let tid = field(event, "tid")?
            .as_f64()
            .ok_or(format!("event {i}: `tid` is not a number"))? as u64;
        field(event, "pid")?
            .as_f64()
            .ok_or(format!("event {i}: `pid` is not a number"))?;
        let ts = field(event, "ts")?
            .as_f64()
            .ok_or(format!("event {i}: `ts` is not a number"))?;
        let name = field(event, "name")?
            .as_str()
            .ok_or(format!("event {i}: `name` is not a string"))?
            .to_string();

        let prev = last_ts.entry(tid).or_insert(ts);
        if ts < *prev {
            return Err(format!(
                "event {i} (`{name}`): ts {ts} < {prev} — not monotone on tid {tid}"
            ));
        }
        *prev = ts;

        match ph.as_str() {
            "B" => open.entry(tid).or_default().push(name.clone()),
            "E" => match open.entry(tid).or_default().pop() {
                Some(b) if b == name => {}
                Some(b) => {
                    return Err(format!(
                        "event {i}: `E` for `{name}` closes `{b}` on tid {tid}"
                    ))
                }
                None => {
                    return Err(format!(
                        "event {i}: `E` for `{name}` with no open `B` on tid {tid}"
                    ))
                }
            },
            "X" => {
                field(event, "dur")?
                    .as_f64()
                    .ok_or(format!("event {i} (`{name}`): `X` without numeric `dur`"))?;
            }
            "s" | "f" => {
                let id = field(event, "id")?
                    .as_f64()
                    .ok_or(format!("event {i} (`{name}`): flow without numeric `id`"))?
                    as u64;
                if ph == "s" {
                    flow_starts.entry(name.clone()).or_default().push(id);
                } else {
                    flow_ends.entry(name.clone()).or_default().push(id);
                }
            }
            "i" | "C" => {}
            other => return Err(format!("event {i} (`{name}`): unknown ph `{other}`")),
        }
        seen_names.push(name);
    }

    for (tid, stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!("tid {tid}: `B` for `{name}` never closed"));
        }
    }

    let tids = last_ts.len();
    if tids < opts.min_tids {
        return Err(format!(
            "trace spans {tids} tid(s), need at least {}",
            opts.min_tids
        ));
    }
    for want in &opts.require {
        if !seen_names.iter().any(|n| n.contains(want.as_str())) {
            return Err(format!("no event name contains `{want}`"));
        }
    }
    for want in &opts.require_flow {
        let starts = flow_starts.get(want).map(Vec::as_slice).unwrap_or(&[]);
        let ends = flow_ends.get(want).map(Vec::as_slice).unwrap_or(&[]);
        if !starts.iter().any(|id| ends.contains(id)) {
            return Err(format!(
                "no flow id under `{want}` has both a start and an end \
                 ({} starts, {} ends)",
                starts.len(),
                ends.len()
            ));
        }
    }
    Ok(events.len())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("validate_trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&opts.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_trace: {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let parsed: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("validate_trace: {}: invalid JSON: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    match check(&parsed, &opts) {
        Ok(n) => {
            println!("validate_trace: {} ok ({n} events)", opts.path);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_trace: {}: {e}", opts.path);
            ExitCode::FAILURE
        }
    }
}
