//! Validates a `--metrics-out` JSON file with the compat JSON parser.
//!
//! Used by `scripts/check.sh` as the smoke gate for
//! `dvfs batch --metrics=json --metrics-out <path>`: the file must parse
//! and contain cache hit/miss/eviction counters, a request-latency
//! histogram with p50/p90/p99, and per-phase span timings.
//!
//! ```text
//! cargo run -p obs --example validate_metrics -- metrics.json
//! ```

use serde::value::Value;
use std::process::ExitCode;

fn check(parsed: &Value) -> Result<(), String> {
    let counters = parsed.get("counters").ok_or("missing `counters` section")?;
    for key in ["cache.hits", "cache.misses", "cache.evictions"] {
        counters
            .get(key)
            .and_then(Value::as_f64)
            .ok_or(format!("missing counter `{key}`"))?;
    }
    let gauges = parsed.get("gauges").ok_or("missing `gauges` section")?;
    for key in ["cache.hit_rate", "cache.evictions_per_capacity"] {
        gauges
            .get(key)
            .and_then(Value::as_f64)
            .ok_or(format!("missing gauge `{key}`"))?;
    }
    let hist = parsed
        .get("histograms")
        .and_then(|h| h.get("batch.request_ns"))
        .ok_or("missing histogram `batch.request_ns`")?;
    for key in ["count", "p50", "p90", "p99", "max"] {
        hist.get(key)
            .and_then(Value::as_f64)
            .ok_or(format!("histogram missing `{key}`"))?;
    }
    if hist.get("count").and_then(Value::as_f64) == Some(0.0) {
        return Err("request-latency histogram is empty".into());
    }
    let spans = parsed
        .get("spans")
        .and_then(Value::as_object)
        .ok_or("missing `spans` section")?;
    if spans.is_empty() {
        return Err("no span timings recorded".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_metrics <metrics.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_metrics: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("validate_metrics: {path}: invalid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&parsed) {
        Ok(()) => {
            println!("validate_metrics: {path} ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_metrics: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
