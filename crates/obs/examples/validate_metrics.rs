//! Validates a `--metrics-out` JSON file with the compat JSON parser.
//!
//! Used by `scripts/check.sh` as the smoke gate for
//! `dvfs batch --metrics=json --metrics-out <path>`: the file must parse
//! and contain cache hit/miss/eviction counters, a request-latency
//! histogram with p50/p90/p99, and per-phase span timings.
//!
//! ```text
//! cargo run -p obs --example validate_metrics -- metrics.json
//! cargo run -p obs --example validate_metrics -- metrics.json --hist serve.request_ns
//! cargo run -p obs --example validate_metrics -- metrics.json \
//!     --gauge serve.window.qps=0..1e6 --gauge cache.hit_rate=0..1
//! ```
//!
//! `--hist NAME` overrides which request-latency histogram must be
//! present and non-empty (default `batch.request_ns`); `dvfs serve`
//! exports its latencies as `serve.request_ns`. Each repeatable
//! `--gauge NAME=MIN..MAX` asserts that the named gauge exists and its
//! value lies in the inclusive range.

use serde::value::Value;
use std::process::ExitCode;

/// One `--gauge NAME=MIN..MAX` range assertion.
struct GaugeRange {
    name: String,
    min: f64,
    max: f64,
}

impl GaugeRange {
    /// Parses `NAME=MIN..MAX` (both bounds any `f64` literal).
    fn parse(spec: &str) -> Result<GaugeRange, String> {
        let (name, range) = spec
            .split_once('=')
            .ok_or_else(|| format!("`{spec}`: expected NAME=MIN..MAX"))?;
        let (lo, hi) = range
            .split_once("..")
            .ok_or_else(|| format!("`{spec}`: expected NAME=MIN..MAX"))?;
        let min: f64 = lo
            .parse()
            .map_err(|e| format!("`{spec}`: bad minimum: {e}"))?;
        let max: f64 = hi
            .parse()
            .map_err(|e| format!("`{spec}`: bad maximum: {e}"))?;
        if name.is_empty() || min > max {
            return Err(format!("`{spec}`: empty name or inverted range"));
        }
        Ok(GaugeRange {
            name: name.to_string(),
            min,
            max,
        })
    }

    fn check(&self, gauges: &Value) -> Result<(), String> {
        let v = gauges
            .get(&self.name)
            .and_then(Value::as_f64)
            .ok_or(format!("missing gauge `{}`", self.name))?;
        if v < self.min || v > self.max {
            return Err(format!(
                "gauge `{}` = {v} outside [{}, {}]",
                self.name, self.min, self.max
            ));
        }
        Ok(())
    }
}

fn check(parsed: &Value, hist_name: &str, gauge_ranges: &[GaugeRange]) -> Result<(), String> {
    let counters = parsed.get("counters").ok_or("missing `counters` section")?;
    for key in ["cache.hits", "cache.misses", "cache.evictions"] {
        counters
            .get(key)
            .and_then(Value::as_f64)
            .ok_or(format!("missing counter `{key}`"))?;
    }
    let gauges = parsed.get("gauges").ok_or("missing `gauges` section")?;
    for key in ["cache.hit_rate", "cache.evictions_per_capacity"] {
        gauges
            .get(key)
            .and_then(Value::as_f64)
            .ok_or(format!("missing gauge `{key}`"))?;
    }
    let hist = parsed
        .get("histograms")
        .and_then(|h| h.get(hist_name))
        .ok_or(format!("missing histogram `{hist_name}`"))?;
    for key in ["count", "p50", "p90", "p99", "max"] {
        hist.get(key)
            .and_then(Value::as_f64)
            .ok_or(format!("histogram missing `{key}`"))?;
    }
    if hist.get("count").and_then(Value::as_f64) == Some(0.0) {
        return Err("request-latency histogram is empty".into());
    }
    let spans = parsed
        .get("spans")
        .and_then(Value::as_object)
        .ok_or("missing `spans` section")?;
    if spans.is_empty() {
        return Err("no span timings recorded".into());
    }
    for range in gauge_ranges {
        range.check(gauges)?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut hist_name = "batch.request_ns".to_string();
    let mut gauge_ranges = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--hist" {
            match it.next() {
                Some(name) => hist_name = name,
                None => {
                    eprintln!("validate_metrics: --hist needs a value");
                    return ExitCode::FAILURE;
                }
            }
        } else if arg == "--gauge" {
            let spec = match it.next() {
                Some(spec) => spec,
                None => {
                    eprintln!("validate_metrics: --gauge needs NAME=MIN..MAX");
                    return ExitCode::FAILURE;
                }
            };
            match GaugeRange::parse(&spec) {
                Ok(range) => gauge_ranges.push(range),
                Err(e) => {
                    eprintln!("validate_metrics: --gauge {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            path = Some(arg);
        }
    }
    let Some(path) = path else {
        eprintln!(
            "usage: validate_metrics <metrics.json> [--hist NAME] [--gauge NAME=MIN..MAX]..."
        );
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_metrics: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("validate_metrics: {path}: invalid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&parsed, &hist_name, &gauge_ranges) {
        Ok(()) => {
            println!("validate_metrics: {path} ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_metrics: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
