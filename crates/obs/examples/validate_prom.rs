//! Strictly validates a Prometheus text-exposition document (as served
//! by `dvfs serve --telemetry-port` and fetched by `dvfs scrape`).
//!
//! Used by `scripts/check.sh` as the smoke gate for the scrape surface:
//! the document must pass [`obs::prom::parse`] (legal names, TYPE
//! headers, cumulative bucket monotonicity, `+Inf` == `_count`), and —
//! optionally — contain each `--require NAME` as a counter, gauge,
//! histogram, or info metric.
//!
//! ```text
//! cargo run -p obs --example validate_prom -- exposition.txt \
//!     --require serve_requests --require dvfs_build_info
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut require = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--require" {
            match it.next() {
                Some(name) => require.push(name),
                None => {
                    eprintln!("validate_prom: --require needs a value");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            path = Some(arg);
        }
    }
    let Some(path) = path else {
        eprintln!("usage: validate_prom <exposition.txt> [--require NAME]...");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_prom: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = match obs::prom::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("validate_prom: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for name in &require {
        let found = parsed.counters.contains_key(name)
            || parsed.gauges.contains_key(name)
            || parsed.histograms.contains_key(name)
            || parsed.infos.contains_key(name);
        if !found {
            eprintln!("validate_prom: {path}: no metric named `{name}`");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "validate_prom: {path} ok ({} counters, {} gauges, {} histograms, {} infos)",
        parsed.counters.len(),
        parsed.gauges.len(),
        parsed.histograms.len(),
        parsed.infos.len()
    );
    ExitCode::SUCCESS
}
