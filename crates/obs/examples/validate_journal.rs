//! Validates a `dvfs journal --export` JSONL file with the compat JSON
//! parser.
//!
//! Used by `scripts/check.sh` as the smoke gate for the decision
//! journal: every line must parse as one JSON object with `crc_ok`
//! true, sequence numbers must be strictly increasing, timestamps must
//! be non-decreasing (the journal writer assigns them in durability
//! order), and — when a `--metrics metrics.json` export from the same
//! serve run is given — the line count must equal the server's
//! `serve.requests` counter, proving no decision was dropped.
//!
//! ```text
//! cargo run -p obs --example validate_journal -- journal.jsonl
//! cargo run -p obs --example validate_journal -- journal.jsonl --metrics metrics.json
//! cargo run -p obs --example validate_journal -- journal.jsonl --expect 400
//! ```

use serde::value::Value;
use std::process::ExitCode;

/// Fields every export line must carry, with a coarse type check.
const REQUIRED: &[&str] = &[
    "seq",
    "ts_ns",
    "version",
    "req_id",
    "cmd",
    "workload",
    "fp_active",
    "dram_active",
    "exec_time",
    "cache_key",
    "profile_digest",
    "predicted_time_s",
    "predicted_energy_j",
    "baseline_energy_j",
    "joules_saved",
    "crc_ok",
];

fn check_lines(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    let mut last_seq: Option<f64> = None;
    let mut last_ts: Option<f64> = None;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("line {n}: invalid JSON: {e}"))?;
        for key in REQUIRED {
            v.get(key).ok_or(format!("line {n}: missing `{key}`"))?;
        }
        if v.get("crc_ok").and_then(Value::as_bool) != Some(true) {
            return Err(format!("line {n}: crc_ok is not true"));
        }
        let cmd = v.get("cmd").and_then(Value::as_str).unwrap_or("");
        if cmd != "predict" && cmd != "select" {
            return Err(format!("line {n}: unknown cmd `{cmd}`"));
        }
        // Select lines must name their objective and chosen clock.
        if cmd == "select"
            && (v.get("objective").and_then(Value::as_str).is_none()
                || v.get("chosen_mhz").and_then(Value::as_f64).is_none())
        {
            return Err(format!("line {n}: select without objective/chosen_mhz"));
        }
        let seq = v
            .get("seq")
            .and_then(Value::as_f64)
            .ok_or(format!("line {n}: non-numeric seq"))?;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!("line {n}: seq {seq} not above previous {prev}"));
            }
        }
        last_seq = Some(seq);
        let ts = v
            .get("ts_ns")
            .and_then(Value::as_f64)
            .ok_or(format!("line {n}: non-numeric ts_ns"))?;
        if let Some(prev) = last_ts {
            if ts < prev {
                return Err(format!("line {n}: ts_ns {ts} went backwards from {prev}"));
            }
        }
        last_ts = Some(ts);
        count += 1;
    }
    if count == 0 {
        return Err("no journal lines to validate".into());
    }
    Ok(count)
}

/// Reads `serve.requests` from a `--metrics-out` JSON export.
fn served_requests(path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let parsed: Value = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    parsed
        .get("counters")
        .and_then(|c| c.get("serve.requests"))
        .and_then(Value::as_f64)
        .ok_or(format!("{path}: missing counter `serve.requests`"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut metrics_path = None;
    let mut expect: Option<usize> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--metrics" {
            match it.next() {
                Some(p) => metrics_path = Some(p),
                None => {
                    eprintln!("validate_journal: --metrics needs a path");
                    return ExitCode::FAILURE;
                }
            }
        } else if arg == "--expect" {
            match it.next().as_deref().map(str::parse) {
                Some(Ok(n)) => expect = Some(n),
                _ => {
                    eprintln!("validate_journal: --expect needs a count");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            path = Some(arg);
        }
    }
    let Some(path) = path else {
        eprintln!("usage: validate_journal <journal.jsonl> [--metrics metrics.json] [--expect N]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_journal: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let count = match check_lines(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("validate_journal: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(metrics) = metrics_path {
        match served_requests(&metrics) {
            Ok(served) if served == count as f64 => {}
            Ok(served) => {
                eprintln!(
                    "validate_journal: {path}: {count} journal line(s) but \
                     serve.requests = {served} — decisions were dropped"
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("validate_journal: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(n) = expect {
        if count != n {
            eprintln!("validate_journal: {path}: expected {n} line(s), found {count}");
            return ExitCode::FAILURE;
        }
    }
    println!("validate_journal: {path} ok ({count} decision(s))");
    ExitCode::SUCCESS
}
