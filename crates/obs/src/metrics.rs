//! Named counters, gauges, and histograms behind a registry.
//!
//! Registration (name lookup) takes a `parking_lot` mutex; the handles
//! handed back are `Arc`-shared atomics, so the hot paths — increment,
//! set, record — are lock-free. Hoist handles out of loops: fetch the
//! counter/histogram once, then hammer it.

use crate::hist::{Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A monotonically-increasing (or bridged-absolute) `u64` metric.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a free-standing counter (registry-less, for tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for bridging counters maintained elsewhere
    /// (e.g. cache hit/miss statistics published after a run) into the
    /// registry.
    pub fn set(&self, n: u64) {
        self.cell.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` metric (stored as bits in an atomic).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Creates a free-standing gauge (registry-less, for tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// `counter`/`gauge`/`histogram` register on first use and return shared
/// handles on every call, so any part of the stack can reach the same
/// metric by name without threading handles through APIs.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it if new.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, registering it if new.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, registering it if new.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Shared handles to every registered histogram, name-sorted. For
    /// exporters that need bucket-level detail (Prometheus exposition,
    /// time-series sampling) rather than the percentile summary a
    /// [`RegistrySnapshot`] carries.
    pub fn histogram_entries(&self) -> Vec<(String, Histogram)> {
        self.histograms
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Point-in-time values of every registered metric, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Drops every registered metric (handles already handed out keep
    /// working but are no longer reachable by name). For tests.
    pub fn reset(&self) {
        self.counters.lock().clear();
        self.gauges.lock().clear();
        self.histograms.lock().clear();
    }
}

/// Point-in-time values of a registry's metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` for every histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// The process-wide registry the stack's instrumentation reports into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_alias_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        // A different name is a different cell.
        assert_eq!(reg.counter("y").get(), 0);
    }

    #[test]
    fn gauges_hold_last_write() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("g");
        g.set(0.25);
        g.set(0.75);
        assert_eq!(reg.gauge("g").get(), 0.75);
    }

    #[test]
    fn counter_set_bridges_absolute_values() {
        let c = Counter::new();
        c.set(41);
        c.inc();
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn snapshot_is_name_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("b").inc();
        reg.counter("a").add(2);
        reg.gauge("g").set(1.5);
        reg.histogram("h").record(10);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("a".into(), 2), ("b".into(), 1)]);
        assert_eq!(snap.gauges, vec![("g".into(), 1.5)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn concurrent_increments_from_rayon_threads_all_land() {
        use rayon::prelude::*;
        let reg = MetricsRegistry::new();
        let counter = reg.counter("hits");
        let hist = reg.histogram("lat");
        (0..10_000u64).into_par_iter().for_each(|i| {
            counter.inc();
            hist.record(i % 97 + 1);
        });
        assert_eq!(counter.get(), 10_000);
        assert_eq!(hist.count(), 10_000);
        assert_eq!(hist.max(), 97);
    }

    #[test]
    fn reset_clears_names() {
        let reg = MetricsRegistry::new();
        reg.counter("c").inc();
        reg.reset();
        assert_eq!(reg.counter("c").get(), 0);
    }
}
