//! Leveled stderr logging with a `DVFS_LOG` environment filter.
//!
//! The stack's progress lines go through [`crate::log!`] so one knob —
//! `DVFS_LOG=off|error|warn|info|debug` (default `info`) — silences or
//! expands all of them at once. The filter is parsed once, on first use.

use std::sync::OnceLock;

/// Verbosity levels, ordered from silent to chatty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No output at all.
    Off,
    /// Failures only.
    Error,
    /// Things that deserve attention but are not failures — model
    /// drift alerts and friends.
    Warn,
    /// Progress lines (the default).
    Info,
    /// Everything, including per-step detail.
    Debug,
}

impl Level {
    /// Parses a `DVFS_LOG` value (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    /// The tag printed in front of each line.
    pub fn label(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

static MAX_LEVEL: OnceLock<Level> = OnceLock::new();

/// The active filter: `DVFS_LOG` if set and valid, else `info`.
pub fn max_level() -> Level {
    *MAX_LEVEL.get_or_init(|| {
        std::env::var("DVFS_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Info)
    })
}

/// Pins the filter before first use, overriding the environment.
/// Returns false if the filter was already initialized. For embedders
/// and tests.
pub fn set_max_level(level: Level) -> bool {
    MAX_LEVEL.set(level).is_ok()
}

/// Whether a message at `level` passes the filter.
pub fn enabled(level: Level) -> bool {
    level != Level::Off && level <= max_level()
}

#[doc(hidden)]
pub fn write(level: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("[{}] {args}", level.label());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_documented_values() {
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("ERROR"), Some(Level::Error));
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("Warning"), Some(Level::Warn));
        assert_eq!(Level::parse("Info"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn levels_order_from_silent_to_chatty() {
        assert!(Level::Off < Level::Error);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn off_is_never_enabled() {
        // Whatever the ambient filter, `Off` messages never print.
        assert!(!enabled(Level::Off));
    }
}
