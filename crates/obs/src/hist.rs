//! Log-linear ("HDR-style") histogram over `u64` values.
//!
//! Values are unit-agnostic; the stack records latencies in nanoseconds.
//! Every value below [`SUBBUCKETS`] gets an exact bucket of width 1, and
//! each power-of-two octave above that is split into [`SUBBUCKETS`]
//! linear sub-buckets, so the relative quantization error of any
//! recorded value — and therefore of any reported percentile — is
//! bounded by `1/SUBBUCKETS` (~3%). Recording is a handful of relaxed
//! atomic operations, safe to call concurrently from any thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Linear sub-buckets per power-of-two octave (also the size of the
/// exact, width-1 range at the bottom). Must stay a power of two.
pub const SUBBUCKETS: u64 = 32;
const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros();
/// Enough buckets to cover the full `u64` range: the top octave has
/// `msb = 63`, i.e. shift `63 - SUB_BITS`, and indices run to
/// `(shift + 1) * SUBBUCKETS + SUBBUCKETS - 1`, so the bucket count is
/// `(shift + 2) * SUBBUCKETS`.
const N_BUCKETS: usize = (65 - SUB_BITS as usize) * SUBBUCKETS as usize;

/// Bucket index holding `v`.
fn index_of(v: u64) -> usize {
    if v < SUBBUCKETS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = (v >> shift) - SUBBUCKETS;
        (u64::from(shift + 1) * SUBBUCKETS + sub) as usize
    }
}

/// Lower bound and width of bucket `index`. The bucket covers the
/// half-open value range `[lo, lo + width)`; since recorded values are
/// integers, its inclusive upper edge is `lo + width - 1`. Public so the
/// Prometheus exporter and the time-series snapshot-delta percentile
/// math can reconstruct value ranges from sparse bucket indices.
pub fn bounds_of_index(index: usize) -> (u64, u64) {
    let index = index as u64;
    if index < SUBBUCKETS {
        (index, 1)
    } else {
        let shift = (index / SUBBUCKETS - 1) as u32;
        let sub = index % SUBBUCKETS;
        ((SUBBUCKETS + sub) << shift, 1u64 << shift)
    }
}

/// Lower bound and width of the bucket that would hold `v` — the
/// quantization granularity at that magnitude. Exposed so tests (and the
/// percentile-parity acceptance check) can assert "within one bucket
/// width" precisely.
pub fn bucket_bounds(v: u64) -> (u64, u64) {
    bounds_of_index(index_of(v))
}

struct Core {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

/// A concurrent log-linear histogram handle. Clones share the same
/// underlying buckets (this is what [`crate::MetricsRegistry`] hands
/// out), so a handle can be hoisted out of a hot loop once and recorded
/// into lock-free.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<Core>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            core: Arc::new(Core {
                buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        let c = &self.core;
        c.buckets[index_of(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.core.max.load(Ordering::Relaxed)
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.core.min.load(Ordering::Relaxed)
        }
    }

    /// Sum of all recorded values (saturating in the same way recording
    /// is: the per-record `fetch_add` wraps only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// The non-empty buckets as `(bucket_index, count)` pairs, index
    /// ascending. Pair with [`bounds_of_index`] to recover value ranges.
    /// This is the raw (non-cumulative) per-bucket count — callers that
    /// need Prometheus-style cumulative buckets accumulate as they walk.
    pub fn sparse_buckets(&self) -> Vec<(usize, u64)> {
        self.core
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c != 0).then_some((i, c))
            })
            .collect()
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.core.sum.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, quantized to its bucket.
    ///
    /// Uses the same rank convention as indexing a sorted vector at
    /// `((len - 1) * q)` truncated, so results stay comparable to naive
    /// sort-based percentile math to within one bucket width. `q = 1`
    /// returns the exact maximum.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((count - 1) as f64 * q.clamp(0.0, 1.0)) as u64;
        if rank >= count - 1 {
            // The top rank is tracked exactly (like a sorted vector's
            // last element), not bucket-quantized. This covers the
            // single-sample-in-a-high-bucket case: p99 of one recorded
            // value is that value, not its bucket's lower edge.
            return self.max();
        }
        if rank == 0 {
            // Symmetric fix at the bottom: the lowest rank is the exact
            // tracked minimum, not the midpoint of the minimum's bucket
            // (which can sit above the recorded value). With two samples
            // this makes both reachable ranks exact.
            return self.min();
        }
        let mut seen = 0u64;
        for (i, bucket) in self.core.buckets.iter().enumerate() {
            let c = bucket.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            seen += c;
            if seen > rank {
                let (lo, width) = bounds_of_index(i);
                // The bucket midpoint, clamped into the observed range so
                // quantization never reports beyond the true extremes.
                return (lo + width / 2).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// A point-in-time summary (count, mean, min/max, p50/p90/p99).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }
}

/// A point-in-time histogram summary, as exported.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Mean recorded value.
    pub mean: f64,
    /// Exact minimum.
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Median (bucket-quantized).
    pub p50: u64,
    /// 90th percentile (bucket-quantized).
    pub p90: u64,
    /// 99th percentile (bucket-quantized).
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.percentile(0.5), 2);
        assert_eq!(h.percentile(1.0), 31);
    }

    #[test]
    fn bucket_bounds_contain_value_and_bound_error() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 1000, 123_456, u64::MAX / 2] {
            let (lo, width) = bucket_bounds(v);
            assert!(
                lo <= v && v < lo.saturating_add(width),
                "v={v} lo={lo} w={width}"
            );
            if v >= SUBBUCKETS {
                // Log-linear: width is at most v / SUBBUCKETS * 2.
                assert!(width <= v / SUBBUCKETS * 2, "v={v} width={width}");
            } else {
                assert_eq!(width, 1);
            }
        }
    }

    #[test]
    fn indices_are_monotone_and_in_range() {
        let mut prev = 0usize;
        for exp in 0..64u32 {
            let v = 1u64 << exp;
            for probe in [v, v + v / 3, v + v / 2] {
                let i = index_of(probe);
                assert!(i < N_BUCKETS);
                assert!(i >= prev, "index regressed at {probe}");
                prev = i;
            }
        }
        assert!(index_of(u64::MAX) < N_BUCKETS);
    }

    #[test]
    fn percentiles_track_a_known_distribution() {
        let h = Histogram::new();
        // 1..=1000 microsecond-ish values in ns scale.
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let oracle = |q: f64| ((1000.0 - 1.0) * q) as usize;
        for q in [0.5, 0.9, 0.99] {
            let est = h.percentile(q);
            let exact = (oracle(q) as u64 + 1) * 1000;
            let (_, width) = bucket_bounds(exact);
            assert!(
                est.abs_diff(exact) < width,
                "q={q}: est {est} vs exact {exact} (bucket width {width})"
            );
        }
        assert_eq!(h.percentile(1.0), 1_000_000);
    }

    #[test]
    fn single_sample_in_a_high_bucket_is_reported_exactly() {
        // 1_234_567 lands in a wide log-linear bucket whose lower edge
        // is thousands below the value; every percentile of a
        // single-sample histogram must still be the recorded value.
        let h = Histogram::new();
        h.record(1_234_567);
        let (lo, width) = bucket_bounds(1_234_567);
        assert!(width > 1 && lo < 1_234_567, "value must not sit on an edge");
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 1_234_567, "q={q}");
        }
    }

    #[test]
    fn two_samples_report_exact_extremes() {
        let h = Histogram::new();
        h.record(1_000_003);
        h.record(2_000_003);
        // The sorted-vector rank convention truncates `(len-1)*q`, so
        // any q < 1 is rank 0 here — the exact min; q = 1 is the exact
        // max. Neither is bucket-quantized.
        assert_eq!(h.percentile(0.0), 1_000_003);
        assert_eq!(h.percentile(0.5), 1_000_003);
        assert_eq!(h.percentile(0.99), 1_000_003);
        assert_eq!(h.percentile(1.0), 2_000_003);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn sparse_buckets_cover_every_recorded_value() {
        let h = Histogram::new();
        let values = [3u64, 3, 40, 1000, 123_456];
        for v in values {
            h.record(v);
        }
        let sparse = h.sparse_buckets();
        let total: u64 = sparse.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, values.len() as u64);
        assert_eq!(h.sum(), values.iter().sum::<u64>());
        // Indices ascend and each bucket's range contains at least one
        // recorded value.
        let mut prev = None;
        for &(i, _) in &sparse {
            assert!(prev.is_none_or(|p| i > p), "indices must ascend");
            prev = Some(i);
            let (lo, width) = bounds_of_index(i);
            assert!(
                values.iter().any(|&v| v >= lo && v < lo + width),
                "bucket {i} [{lo}, {}) matches no recorded value",
                lo + width
            );
        }
    }

    #[test]
    fn clones_share_state() {
        let h = Histogram::new();
        let h2 = h.clone();
        h.record(7);
        h2.record(9);
        assert_eq!(h.count(), 2);
        assert_eq!(h2.max(), 9);
    }
}
