//! Declarative service-level objectives with multi-window burn-rate
//! alerting over an [`crate::timeseries::TimeSeries`].
//!
//! An SLO states what fraction of events must be *good* (`target`, e.g.
//! `0.999`). Its error budget is `1 - target`. The **burn rate** of a
//! window is how fast that budget is being consumed relative to plan:
//!
//! ```text
//! burn = error_fraction(window) / (1 - target)
//! ```
//!
//! `burn == 1` means errors arrive exactly at the sustainable rate;
//! `burn == 10` exhausts a month's budget in three days. Following the
//! standard multi-window scheme, an alert requires **both** a fast
//! window (reacts quickly, noisy alone) and a slow window (confirms the
//! burn is sustained) above the threshold — and fires exactly once per
//! rising edge, like [`crate::quality::QualityMonitor`]: a counter
//! increment, a `log!(Warn, …)` line, and an `slo.alert` trace instant.
//! The firing state clears when either window drops back to or below
//! the threshold (windows with no traffic read as burn 0).
//!
//! Three objective kinds cover the serve plane:
//!
//! * [`SloKind::Latency`] — good events are histogram records at or
//!   under a threshold (`p99 < 500µs` as "99% of requests under
//!   500µs");
//! * [`SloKind::ErrorRatio`] — good/error counter pair
//!   (`availability ≥ 99.9%`);
//! * [`SloKind::GaugeBelow`] — a gauge that must stay at or under a
//!   bound (the paper's 88–98% accuracy band as `MAPE ≤ 12`).

use crate::metrics::{Counter, Gauge, MetricsRegistry};
use crate::timeseries::{TimeSeries, Window};
use parking_lot::Mutex;
use std::time::Duration;

/// What an objective measures.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// Good events are histogram records `<= threshold_ns` (bucket
    /// quantized — see [`crate::timeseries::HistDelta::count_le`]).
    Latency {
        /// Registry histogram name (e.g. `serve.request_ns`).
        hist: String,
        /// Inclusive good/bad boundary, in the histogram's unit.
        threshold_ns: u64,
    },
    /// Good and error events are counters; the error fraction is
    /// `errors / (good + errors)` over the window.
    ErrorRatio {
        /// Counter of successful events.
        good: String,
        /// Counter of failed events.
        errors: String,
    },
    /// The gauge's latest value must be `<= max`; above it the whole
    /// window is in error (fraction 1.0). An absent gauge reads as no
    /// data, not a violation.
    GaugeBelow {
        /// Registry gauge name (e.g. `quality.power.mape`).
        gauge: String,
        /// Inclusive upper bound.
        max: f64,
    },
}

/// One declared objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Identifier used in metric names (`slo.<name>.…`), alerts, and
    /// the stats frame.
    pub name: String,
    /// What is measured.
    pub kind: SloKind,
    /// Required good fraction in `[0, 1)` — e.g. `0.999`.
    pub target: f64,
    /// Fast (reactive) window.
    pub fast: Duration,
    /// Slow (confirming) window.
    pub slow: Duration,
    /// Both windows' burn rates must exceed this to fire (1.0 = budget
    /// consumed exactly as fast as sustainable).
    pub burn_threshold: f64,
}

impl SloSpec {
    /// A latency objective: `target` fraction of `hist` records must be
    /// `<= threshold_ns`. Default windows 5m/1h, burn threshold 1.0.
    pub fn latency(name: &str, hist: &str, threshold_ns: u64, target: f64) -> Self {
        Self {
            name: name.to_string(),
            kind: SloKind::Latency {
                hist: hist.to_string(),
                threshold_ns,
            },
            target,
            fast: Duration::from_secs(300),
            slow: Duration::from_secs(3600),
            burn_threshold: 1.0,
        }
    }

    /// An availability objective over a good/error counter pair.
    pub fn error_ratio(name: &str, good: &str, errors: &str, target: f64) -> Self {
        Self {
            kind: SloKind::ErrorRatio {
                good: good.to_string(),
                errors: errors.to_string(),
            },
            ..Self::latency(name, "", 0, target)
        }
    }

    /// A bound on a gauge (e.g. rolling model MAPE within the paper's
    /// band).
    pub fn gauge_below(name: &str, gauge: &str, max: f64, target: f64) -> Self {
        Self {
            kind: SloKind::GaugeBelow {
                gauge: gauge.to_string(),
                max,
            },
            ..Self::latency(name, "", 0, target)
        }
    }

    /// Overrides the fast/slow windows.
    pub fn with_windows(mut self, fast: Duration, slow: Duration) -> Self {
        self.fast = fast;
        self.slow = slow;
        self
    }

    /// Overrides the burn threshold.
    pub fn with_burn_threshold(mut self, threshold: f64) -> Self {
        self.burn_threshold = threshold;
        self
    }
}

/// Point-in-time state of one objective, as last evaluated.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The spec's name.
    pub name: String,
    /// Required good fraction.
    pub target: f64,
    /// Burn rate over the fast window (0 with no data).
    pub burn_fast: f64,
    /// Burn rate over the slow window (0 with no data).
    pub burn_slow: f64,
    /// Whether both windows currently exceed the burn threshold.
    pub firing: bool,
    /// Rising-edge alerts so far.
    pub alerts: u64,
}

struct Entry {
    spec: SloSpec,
    firing: bool,
    last_fast: f64,
    last_slow: f64,
    burn_fast_gauge: Gauge,
    burn_slow_gauge: Gauge,
    firing_gauge: Gauge,
    alerts_counter: Counter,
}

/// Evaluates a set of [`SloSpec`]s against a time-series and owns their
/// edge-triggered alert state. Publishes, per objective:
/// `slo.<name>.burn_fast`, `slo.<name>.burn_slow`, `slo.<name>.firing`
/// (gauges) and `slo.<name>.alerts` (counter).
pub struct SloEngine {
    entries: Mutex<Vec<Entry>>,
    trace_alert: u32,
    arg_slo: u32,
    arg_burn: u32,
}

impl SloEngine {
    /// An engine publishing into `registry`.
    pub fn with_registry(specs: Vec<SloSpec>, registry: &MetricsRegistry) -> Self {
        let entries = specs
            .into_iter()
            .map(|spec| Entry {
                burn_fast_gauge: registry.gauge(&format!("slo.{}.burn_fast", spec.name)),
                burn_slow_gauge: registry.gauge(&format!("slo.{}.burn_slow", spec.name)),
                firing_gauge: registry.gauge(&format!("slo.{}.firing", spec.name)),
                alerts_counter: registry.counter(&format!("slo.{}.alerts", spec.name)),
                firing: false,
                last_fast: 0.0,
                last_slow: 0.0,
                spec,
            })
            .collect();
        Self {
            entries: Mutex::new(entries),
            trace_alert: crate::trace::intern("slo.alert"),
            arg_slo: crate::trace::intern("slo"),
            arg_burn: crate::trace::intern("burn_fast"),
        }
    }

    /// An engine publishing into the process-global registry.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        Self::with_registry(specs, crate::global())
    }

    /// Whether any objective is declared.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Evaluates every objective against `series`, updates the
    /// edge-triggered alert state, publishes the burn/firing metrics,
    /// and returns the new statuses.
    pub fn evaluate(&self, series: &TimeSeries) -> Vec<SloStatus> {
        let mut entries = self.entries.lock();
        let mut out = Vec::with_capacity(entries.len());
        for entry in entries.iter_mut() {
            let burn_fast = series
                .window(entry.spec.fast)
                .and_then(|w| burn_rate(&entry.spec, &w))
                .unwrap_or(0.0);
            let burn_slow = series
                .window(entry.spec.slow)
                .and_then(|w| burn_rate(&entry.spec, &w))
                .unwrap_or(0.0);
            let firing_now =
                burn_fast > entry.spec.burn_threshold && burn_slow > entry.spec.burn_threshold;
            if firing_now && !entry.firing {
                entry.alerts_counter.inc();
                crate::log!(
                    Warn,
                    "SLO `{}` burning: fast-window burn {burn_fast:.2}x, \
                     slow-window burn {burn_slow:.2}x (threshold {:.2}x, target {:.4})",
                    entry.spec.name,
                    entry.spec.burn_threshold,
                    entry.spec.target
                );
                crate::trace::instant(
                    self.trace_alert,
                    &[
                        (
                            self.arg_slo,
                            crate::trace::ArgValue::Str(crate::trace::intern(&entry.spec.name)),
                        ),
                        (self.arg_burn, crate::trace::ArgValue::F64(burn_fast)),
                    ],
                );
            }
            entry.firing = firing_now;
            entry.last_fast = burn_fast;
            entry.last_slow = burn_slow;
            entry.burn_fast_gauge.set(burn_fast);
            entry.burn_slow_gauge.set(burn_slow);
            entry.firing_gauge.set(f64::from(u8::from(firing_now)));
            out.push(Self::status_of(entry));
        }
        out
    }

    /// The statuses from the most recent [`SloEngine::evaluate`] call
    /// (all-zero burns before the first).
    pub fn status(&self) -> Vec<SloStatus> {
        self.entries.lock().iter().map(Self::status_of).collect()
    }

    fn status_of(entry: &Entry) -> SloStatus {
        SloStatus {
            name: entry.spec.name.clone(),
            target: entry.spec.target,
            burn_fast: entry.last_fast,
            burn_slow: entry.last_slow,
            firing: entry.firing,
            alerts: entry.alerts_counter.get(),
        }
    }
}

/// The burn rate of `spec` over `window`, or `None` when the window
/// carries no signal (no traffic / absent metric) — which callers treat
/// as burn 0 rather than a violation.
fn burn_rate(spec: &SloSpec, window: &Window) -> Option<f64> {
    let error_fraction = match &spec.kind {
        SloKind::Latency { hist, threshold_ns } => {
            let delta = window.hist_delta(hist)?;
            if delta.count == 0 {
                return None;
            }
            1.0 - delta.count_le(*threshold_ns) as f64 / delta.count as f64
        }
        SloKind::ErrorRatio { good, errors } => {
            let g = window.counter_delta(good) as f64;
            let e = window.counter_delta(errors) as f64;
            if g + e == 0.0 {
                return None;
            }
            e / (g + e)
        }
        SloKind::GaugeBelow { gauge, max } => {
            let v = window.gauge_last(gauge)?;
            if v > *max {
                1.0
            } else {
                0.0
            }
        }
    };
    // A target of exactly 1.0 would zero the budget; clamp so a fully
    // erroring window reports a huge-but-finite burn.
    let budget = (1.0 - spec.target).max(1e-9);
    Some(error_fraction / budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn series_with(f: impl Fn(&MetricsRegistry, &TimeSeries)) -> (MetricsRegistry, TimeSeries) {
        let reg = MetricsRegistry::new();
        let ts = TimeSeries::new(16);
        f(&reg, &ts);
        (reg, ts)
    }

    fn tick(reg: &MetricsRegistry, ts: &TimeSeries) {
        std::thread::sleep(Duration::from_millis(5));
        ts.sample(reg);
    }

    #[test]
    fn latency_burn_counts_slow_requests() {
        let (reg, ts) = series_with(|reg, ts| {
            let h = reg.histogram("lat");
            ts.sample(reg);
            // 10% of window traffic over the 1ms threshold.
            for _ in 0..90 {
                h.record(100_000);
            }
            for _ in 0..10 {
                h.record(10_000_000);
            }
        });
        tick(&reg, &ts);
        let spec = SloSpec::latency("lat", "lat", 1_000_000, 0.99)
            .with_windows(Duration::from_secs(60), Duration::from_secs(60));
        let engine = SloEngine::with_registry(vec![spec], &reg);
        let status = engine.evaluate(&ts).pop().unwrap();
        // error fraction 0.10 against a 0.01 budget: burn 10x.
        assert!((status.burn_fast - 10.0).abs() < 0.5, "{status:?}");
        assert!(status.firing);
        assert_eq!(status.alerts, 1);
        assert_eq!(reg.counter("slo.lat.alerts").get(), 1);
        assert_eq!(reg.gauge("slo.lat.firing").get(), 1.0);
    }

    #[test]
    fn alert_fires_once_per_rising_edge() {
        let reg = MetricsRegistry::new();
        let ts = TimeSeries::new(16);
        let good = reg.counter("good");
        let bad = reg.counter("bad");
        ts.sample(&reg);
        let spec = SloSpec::error_ratio("avail", "good", "bad", 0.999)
            .with_windows(Duration::from_secs(60), Duration::from_secs(60));
        let engine = SloEngine::with_registry(vec![spec], &reg);

        // All errors: fires once.
        bad.add(10);
        tick(&reg, &ts);
        assert!(engine.evaluate(&ts).pop().unwrap().firing);
        // Still burning: no second alert.
        bad.add(10);
        tick(&reg, &ts);
        let s = engine.evaluate(&ts).pop().unwrap();
        assert!(s.firing);
        assert_eq!(s.alerts, 1);
        // Recovery: a fresh ring whose ticks only ever see clean
        // traffic (the old errored ticks have aged out of history).
        let ts2 = TimeSeries::new(16);
        ts2.sample(&reg);
        good.add(1000);
        std::thread::sleep(Duration::from_millis(5));
        ts2.sample(&reg);
        let s = engine.evaluate(&ts2).pop().unwrap();
        assert!(!s.firing, "clean window must clear the firing state");
        assert_eq!(s.alerts, 1);
        // ...and a new burn is a new edge.
        bad.add(1_000_000);
        std::thread::sleep(Duration::from_millis(5));
        ts2.sample(&reg);
        let s = engine.evaluate(&ts2).pop().unwrap();
        assert!(s.firing);
        assert_eq!(s.alerts, 2);
    }

    #[test]
    fn no_traffic_reads_as_zero_burn_not_violation() {
        let (reg, ts) = series_with(|reg, ts| {
            reg.histogram("lat");
            ts.sample(reg);
        });
        tick(&reg, &ts);
        let spec = SloSpec::latency("idle", "lat", 1000, 0.99)
            .with_windows(Duration::from_secs(60), Duration::from_secs(60));
        let engine = SloEngine::with_registry(vec![spec], &reg);
        let status = engine.evaluate(&ts).pop().unwrap();
        assert_eq!(status.burn_fast, 0.0);
        assert!(!status.firing);
        assert_eq!(status.alerts, 0);
    }

    #[test]
    fn gauge_objective_tracks_the_quality_band() {
        let (reg, ts) = series_with(|reg, ts| {
            reg.gauge("quality.power.mape").set(3.0);
            ts.sample(reg);
        });
        tick(&reg, &ts);
        let spec = SloSpec::gauge_below("mape", "quality.power.mape", 12.0, 0.999)
            .with_windows(Duration::from_secs(60), Duration::from_secs(60));
        let engine = SloEngine::with_registry(vec![spec], &reg);
        assert!(!engine.evaluate(&ts).pop().unwrap().firing);

        reg.gauge("quality.power.mape").set(25.0);
        tick(&reg, &ts);
        let status = engine.evaluate(&ts).pop().unwrap();
        assert!(status.firing, "MAPE above the band must burn");
        assert!(status.burn_fast > 100.0);
    }

    #[test]
    fn one_window_alone_does_not_fire() {
        // Fast window sees the errors; slow window is configured wider
        // than the retained history base... simulate by making the slow
        // window smaller than the tick spacing so it reads no-data.
        let reg = MetricsRegistry::new();
        let ts = TimeSeries::new(16);
        let bad = reg.counter("bad");
        reg.counter("good");
        ts.sample(&reg);
        bad.add(10);
        std::thread::sleep(Duration::from_millis(20));
        ts.sample(&reg);
        let spec = SloSpec::error_ratio("half", "good", "bad", 0.999)
            .with_windows(Duration::from_secs(60), Duration::from_millis(1));
        let engine = SloEngine::with_registry(vec![spec], &reg);
        let status = engine.evaluate(&ts).pop().unwrap();
        assert!(status.burn_fast > 1.0);
        assert_eq!(status.burn_slow, 0.0);
        assert!(!status.firing, "both windows must agree before firing");
    }
}
