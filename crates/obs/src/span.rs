//! RAII tracing spans with nesting and wall-clock timing.
//!
//! [`Span::enter`] pushes onto a per-thread span stack; the span's path
//! is its name prefixed by the enclosing span's path (`"a/b/c"`), so the
//! aggregate table reads as a call tree. Dropping the span records its
//! elapsed wall-clock time into a process-wide table of per-path
//! statistics. The table mutex is only taken on span *exit* — spans are
//! meant for coarse units of work (an epoch, a pipeline phase, a figure),
//! not per-request hot paths; those use histograms.
//!
//! When the flight recorder is on ([`crate::trace::enabled`]), every
//! span additionally emits a begin/end pair onto the thread's trace
//! timeline under its leaf name, so `--trace-out` shows the same call
//! tree as a Perfetto flame chart for free.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

/// Aggregate timing of every completed span with one path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many spans with this path have completed.
    pub count: u64,
    /// Total wall-clock nanoseconds across completions.
    pub total_ns: u64,
    /// Longest single completion, nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    /// Mean nanoseconds per completion (0 when never completed).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

static TABLE: Mutex<BTreeMap<String, SpanStat>> = Mutex::new(BTreeMap::new());

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open tracing span; timing is recorded when it drops.
///
/// Prefer the [`crate::span!`] macro, which opens a span for the rest of
/// the enclosing scope.
#[derive(Debug)]
pub struct Span {
    path: String,
    start: Instant,
    /// The interned trace name when this span is also on the flight
    /// recorder timeline (`u32::MAX` = tracing was off at enter).
    trace_name: u32,
}

/// Emits the trace begin event for a span, returning its interned leaf
/// name (or `u32::MAX` when tracing is off).
fn trace_begin(name: &str) -> u32 {
    if !crate::trace::enabled() {
        return u32::MAX;
    }
    let id = crate::trace::intern(name);
    crate::trace::begin(id);
    id
}

impl Span {
    /// Opens a span named `name`, nested under the thread's innermost
    /// open span (if any).
    pub fn enter(name: &str) -> Self {
        let trace_name = trace_begin(name);
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        Span {
            path,
            start: Instant::now(),
            trace_name,
        }
    }

    /// Opens a span named `name` nested under an explicit `parent` path
    /// instead of this thread's innermost open span.
    ///
    /// This is how worker threads attribute their time to the call tree
    /// of the thread that dispatched them: capture [`current_path`] on
    /// the dispatching thread, then open the worker's span under it. The
    /// span still lives on the worker's own stack, so any spans the
    /// worker opens inside nest beneath it as usual.
    pub fn enter_under(parent: &str, name: &str) -> Self {
        let trace_name = trace_begin(name);
        let path = if parent.is_empty() {
            name.to_string()
        } else {
            format!("{parent}/{name}")
        };
        STACK.with(|stack| stack.borrow_mut().push(path.clone()));
        Span {
            path,
            start: Instant::now(),
            trace_name,
        }
    }

    /// The span's full call-tree path, e.g. `"pipeline/train/epoch"`.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed_ns = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        // Close the timeline event opened at enter. Only spans that
        // began while tracing was on emit an end, so B/E stay paired
        // even when tracing toggles mid-span.
        if self.trace_name != u32::MAX {
            crate::trace::end(self.trace_name);
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Defensive: only pop if this really is the innermost span
            // (a span moved across threads, or dropped out of order,
            // must not corrupt the stack — its timing still records).
            if stack.last() == Some(&self.path) {
                stack.pop();
            }
        });
        let mut table = TABLE.lock();
        let stat = table.entry(std::mem::take(&mut self.path)).or_default();
        stat.count += 1;
        stat.total_ns += elapsed_ns;
        stat.max_ns = stat.max_ns.max(elapsed_ns);
    }
}

/// Aggregate stats of every completed span path, path-sorted (which
/// groups parents directly above their children).
pub fn snapshot() -> Vec<(String, SpanStat)> {
    TABLE.lock().iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// The aggregate for one exact path, if any span with it completed.
pub fn stat(path: &str) -> Option<SpanStat> {
    TABLE.lock().get(path).copied()
}

/// Clears the aggregate table. For tests.
pub fn reset() {
    TABLE.lock().clear();
}

/// The path of this thread's innermost open span, if any. Capture it
/// before handing work to another thread and pass it to
/// [`Span::enter_under`] so the worker's spans join the caller's tree.
pub fn current_path() -> Option<String> {
    STACK.with(|stack| stack.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_call_tree_paths() {
        {
            let _a = Span::enter("outer-test");
            assert_eq!(_a.path(), "outer-test");
            {
                let b = Span::enter("mid");
                assert_eq!(b.path(), "outer-test/mid");
                let c = Span::enter("leaf");
                assert_eq!(c.path(), "outer-test/mid/leaf");
            }
            // Siblings after a closed child nest under the same parent.
            let d = Span::enter("mid2");
            assert_eq!(d.path(), "outer-test/mid2");
        }
        assert_eq!(stat("outer-test").unwrap().count, 1);
        assert_eq!(stat("outer-test/mid/leaf").unwrap().count, 1);
    }

    #[test]
    fn parent_time_dominates_children_and_timing_is_monotone() {
        {
            let _p = Span::enter("mono-parent");
            for _ in 0..3 {
                let _c = Span::enter("child");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let parent = stat("mono-parent").unwrap();
        let child = stat("mono-parent/child").unwrap();
        assert_eq!(child.count, 3);
        assert!(child.total_ns > 0, "sleeping spans record nonzero time");
        assert!(child.max_ns <= child.total_ns);
        assert!(child.mean_ns() <= child.max_ns as f64);
        // The parent encloses all three children, so its wall time is at
        // least the sum of theirs.
        assert!(
            parent.total_ns >= child.total_ns,
            "parent {} < children {}",
            parent.total_ns,
            child.total_ns
        );
    }

    #[test]
    fn macro_spans_scope_to_the_enclosing_block() {
        {
            crate::span!("macro-span-test");
            crate::span!("macro-span-inner");
            // Both guards are alive here; the inner nests under the outer.
        }
        assert_eq!(stat("macro-span-test").unwrap().count, 1);
        assert_eq!(stat("macro-span-test/macro-span-inner").unwrap().count, 1);
    }

    #[test]
    fn current_path_tracks_the_innermost_span() {
        assert_eq!(current_path(), None);
        let _a = Span::enter("cp-outer");
        assert_eq!(current_path().as_deref(), Some("cp-outer"));
        {
            let _b = Span::enter("cp-inner");
            assert_eq!(current_path().as_deref(), Some("cp-outer/cp-inner"));
        }
        assert_eq!(current_path().as_deref(), Some("cp-outer"));
    }

    #[test]
    fn enter_under_grafts_worker_spans_onto_the_caller_tree() {
        let parent = {
            let _p = Span::enter("graft-parent");
            let path = current_path().unwrap();
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = Span::enter_under(&path, "worker");
                    // Nested spans on the worker chain under the graft.
                    let inner = Span::enter("inner");
                    assert_eq!(inner.path(), "graft-parent/worker/inner");
                })
                .join()
                .unwrap();
            });
            path
        };
        assert_eq!(parent, "graft-parent");
        assert_eq!(stat("graft-parent/worker").unwrap().count, 1);
        assert_eq!(stat("graft-parent/worker/inner").unwrap().count, 1);
    }

    #[test]
    fn spans_land_on_the_trace_timeline() {
        let _guard = crate::trace::GLOBAL_TRACE_TESTS.lock();
        crate::trace::reset();
        crate::trace::set_enabled(true);
        {
            let _s = Span::enter("span-trace-hook");
            let _inner = Span::enter("span-trace-hook-inner");
        }
        crate::trace::set_enabled(false);
        let (events, _) = crate::trace::drain();
        let outer = crate::trace::intern("span-trace-hook");
        let inner = crate::trace::intern("span-trace-hook-inner");
        let kinds = |id: u32| {
            events
                .iter()
                .filter(|e| e.name == id)
                .map(|e| e.kind)
                .collect::<Vec<_>>()
        };
        use crate::trace::EventKind::{Begin, End};
        assert_eq!(kinds(outer), vec![Begin, End]);
        assert_eq!(kinds(inner), vec![Begin, End]);
    }

    #[test]
    fn repeated_spans_aggregate() {
        for _ in 0..5 {
            let _s = Span::enter("agg-span-test");
        }
        let s = stat("agg-span-test").unwrap();
        assert_eq!(s.count, 5);
        assert!(s.total_ns >= s.max_ns);
    }
}
