//! Rolling time-series over the metrics registry: a fixed-capacity ring
//! of periodic snapshots ("ticks") plus windowed queries over them.
//!
//! A [`Sampler`] background thread captures one [`Tick`] per interval
//! (`DVFS_TS_INTERVAL` seconds, default 1.0). Each tick stores counter
//! and gauge values plus, for every histogram, the *raw sparse bucket
//! counts* — not a percentile summary. Because counters and buckets are
//! monotone, any window statistic is a delta between two ticks:
//!
//! * rate over window = `(counter(last) - counter(base)) / dt`;
//! * windowed p50/p99 = percentile over the per-bucket count deltas;
//! * windowed good/total ratios (for SLO burn rates) = cumulative
//!   bucket deltas up to a threshold edge.
//!
//! This makes "p99 over the last 5 minutes" exact with respect to the
//! histogram's own ~3% bucket quantization, with no decay math and no
//! per-request cost beyond what the histogram already pays.

use crate::hist::bounds_of_index;
use crate::metrics::MetricsRegistry;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One histogram's state at a tick: totals plus raw (non-cumulative)
/// sparse bucket counts, index-ascending.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistTick {
    /// Total recorded values so far.
    pub count: u64,
    /// Sum of recorded values so far.
    pub sum: u64,
    /// `(bucket_index, count)` for every non-empty bucket.
    pub buckets: Vec<(usize, u64)>,
}

/// One periodic snapshot of the registry.
#[derive(Debug, Clone)]
pub struct Tick {
    /// Monotonic capture time.
    pub at: Instant,
    /// `(name, value)` for every counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// `(name, state)` for every histogram, name-sorted.
    pub histograms: Vec<(String, HistTick)>,
}

impl Tick {
    /// Captures the registry now.
    pub fn capture(registry: &MetricsRegistry) -> Self {
        let snap = registry.snapshot();
        let histograms = registry
            .histogram_entries()
            .into_iter()
            .map(|(name, h)| {
                (
                    name,
                    HistTick {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.sparse_buckets(),
                    },
                )
            })
            .collect();
        Self {
            at: Instant::now(),
            counters: snap.counters,
            gauges: snap.gauges,
            histograms,
        }
    }

    fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    fn histogram(&self, name: &str) -> Option<&HistTick> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }
}

/// A fixed-capacity ring of [`Tick`]s. Push-side is the sampler thread;
/// query-side is anyone holding the `Arc` (scrape handler, stats frame,
/// SLO engine). One short mutex around the deque — ticks are captured
/// *outside* the lock.
pub struct TimeSeries {
    ring: Mutex<VecDeque<Tick>>,
    capacity: usize,
}

impl TimeSeries {
    /// An empty series retaining at most `capacity` ticks (minimum 2 —
    /// a single tick supports no deltas).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(2),
        }
    }

    /// Captures one tick of `registry` and appends it, evicting the
    /// oldest past capacity.
    pub fn sample(&self, registry: &MetricsRegistry) {
        let tick = Tick::capture(registry);
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(tick);
    }

    /// Number of retained ticks.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether no tick has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The age of the oldest retained tick, i.e. how much history a
    /// window can actually cover.
    pub fn retained_span(&self) -> Duration {
        let ring = self.ring.lock();
        match ring.front() {
            Some(first) => first.at.elapsed(),
            None => Duration::ZERO,
        }
    }

    /// The delta window over the last `span`: from the oldest retained
    /// tick no older than `span` (relative to the newest tick) to the
    /// newest tick. `None` until two such ticks exist — windowed rates
    /// need a base to diff against.
    pub fn window(&self, span: Duration) -> Option<Window> {
        let ring = self.ring.lock();
        let last = ring.back()?;
        let base = ring.iter().find(|t| last.at.duration_since(t.at) <= span)?;
        let dt = last.at.duration_since(base.at);
        if dt.is_zero() {
            return None;
        }
        Some(Window {
            base: base.clone(),
            last: last.clone(),
            dt_s: dt.as_secs_f64(),
        })
    }
}

/// A pair of ticks bounding a time window, with delta queries.
#[derive(Debug, Clone)]
pub struct Window {
    base: Tick,
    last: Tick,
    /// Window length in seconds (always > 0).
    pub dt_s: f64,
}

impl Window {
    /// Counter increase across the window. Saturating: a registry reset
    /// mid-window reads as 0, not an underflow.
    pub fn counter_delta(&self, name: &str) -> u64 {
        let last = self.last.counter(name).unwrap_or(0);
        let base = self.base.counter(name).unwrap_or(0);
        last.saturating_sub(base)
    }

    /// Counter rate in events/second across the window.
    pub fn rate(&self, name: &str) -> f64 {
        self.counter_delta(name) as f64 / self.dt_s
    }

    /// The gauge's value at the window's end (gauges are last-write-wins
    /// — deltas are meaningless).
    pub fn gauge_last(&self, name: &str) -> Option<f64> {
        self.last.gauge(name)
    }

    /// `num_delta / (num_delta + den_delta)` over the window — e.g. a
    /// cache hit-rate from `hits` and `misses` counters. 0 when the
    /// window saw no events.
    pub fn ratio(&self, num: &str, den_rest: &str) -> f64 {
        let n = self.counter_delta(num) as f64;
        let d = n + self.counter_delta(den_rest) as f64;
        if d == 0.0 {
            0.0
        } else {
            n / d
        }
    }

    /// Per-bucket histogram deltas across the window, or `None` if the
    /// histogram was absent at either edge.
    pub fn hist_delta(&self, name: &str) -> Option<HistDelta> {
        let last = self.last.histogram(name)?;
        let base = self.base.histogram(name)?;
        let mut buckets = Vec::with_capacity(last.buckets.len());
        let mut bi = 0usize;
        for &(index, count) in &last.buckets {
            // Sparse merge: base buckets are index-ascending too.
            while bi < base.buckets.len() && base.buckets[bi].0 < index {
                bi += 1;
            }
            let base_count = match base.buckets.get(bi) {
                Some(&(i, c)) if i == index => c,
                _ => 0,
            };
            let delta = count.saturating_sub(base_count);
            if delta > 0 {
                buckets.push((index, delta));
            }
        }
        Some(HistDelta {
            count: last.count.saturating_sub(base.count),
            sum: last.sum.saturating_sub(base.sum),
            buckets,
        })
    }
}

/// Histogram activity within a window: what was recorded between two
/// ticks, in the same sparse-bucket shape as [`HistTick`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistDelta {
    /// Values recorded within the window.
    pub count: u64,
    /// Sum of values recorded within the window.
    pub sum: u64,
    /// `(bucket_index, count)` deltas, index-ascending, zeros omitted.
    pub buckets: Vec<(usize, u64)>,
}

impl HistDelta {
    /// Mean of values recorded in the window (0 when none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` among values recorded in the window,
    /// reported as its bucket midpoint (same rank convention as
    /// [`crate::Histogram::percentile`], without the exact min/max
    /// endpoints — a delta has no tracked extremes).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)) as u64;
        let mut seen = 0u64;
        for &(index, count) in &self.buckets {
            seen += count;
            if seen > rank {
                let (lo, width) = bounds_of_index(index);
                return lo + width / 2;
            }
        }
        match self.buckets.last() {
            Some(&(index, _)) => {
                let (lo, width) = bounds_of_index(index);
                lo + width / 2
            }
            None => 0,
        }
    }

    /// How many window values were `<= threshold`, counting a boundary
    /// bucket (one straddling the threshold) as entirely below it — the
    /// error is bounded by one bucket (~3% in value). Used as the
    /// "good events" numerator in latency SLOs.
    pub fn count_le(&self, threshold: u64) -> u64 {
        self.buckets
            .iter()
            .filter(|&&(index, _)| bounds_of_index(index).0 <= threshold)
            .map(|&(_, c)| c)
            .sum()
    }
}

/// Reads `DVFS_TS_INTERVAL` (seconds, fractional allowed) with a 1.0s
/// default, clamped to at least 10ms so a typo cannot spin a core.
pub fn interval_from_env() -> Duration {
    let secs = std::env::var("DVFS_TS_INTERVAL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v > 0.0)
        .unwrap_or(1.0);
    Duration::from_secs_f64(secs.max(0.01))
}

/// Handle to the background sampler thread. Stops (joining the thread)
/// on [`Sampler::stop`] or drop.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Spawns a thread sampling the global registry into `series` every
    /// `interval`. `pre_sample` runs before each capture — servers use
    /// it to publish derived metrics (cache stats, uptime) so ticks and
    /// scrapes see fresh values.
    pub fn start<F>(series: Arc<TimeSeries>, interval: Duration, pre_sample: F) -> Self
    where
        F: Fn() + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let ticks = crate::global().counter("obs.ts_ticks");
        let cost = crate::global().histogram("obs.ts_sample_ns");
        let handle = std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    pre_sample();
                    series.sample(crate::global());
                    cost.record_duration(t0.elapsed());
                    ticks.inc();
                    // Sleep in short slices so stop() returns promptly
                    // even with multi-second intervals.
                    let mut left = interval;
                    while !stop_flag.load(Ordering::Relaxed) && !left.is_zero() {
                        let nap = left.min(Duration::from_millis(25));
                        std::thread::sleep(nap);
                        left = left.saturating_sub(nap);
                    }
                }
            })
            .expect("spawn obs-sampler thread");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_rates_come_from_counter_deltas() {
        let reg = MetricsRegistry::new();
        let ts = TimeSeries::new(16);
        let c = reg.counter("reqs");
        c.add(100);
        ts.sample(&reg);
        std::thread::sleep(Duration::from_millis(20));
        c.add(50);
        ts.sample(&reg);
        let w = ts.window(Duration::from_secs(60)).expect("two ticks");
        assert_eq!(w.counter_delta("reqs"), 50);
        assert!(w.rate("reqs") > 0.0);
        // Absent counters read as zero deltas, not panics.
        assert_eq!(w.counter_delta("nope"), 0);
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let reg = MetricsRegistry::new();
        let ts = TimeSeries::new(3);
        for i in 0..10u64 {
            reg.counter("c").set(i);
            ts.sample(&reg);
        }
        assert_eq!(ts.len(), 3);
        let w = ts.window(Duration::from_secs(3600)).unwrap();
        // Oldest retained tick holds 7 (ticks 7, 8, 9 survive).
        assert_eq!(w.counter_delta("c"), 2);
    }

    #[test]
    fn hist_delta_percentiles_see_only_window_traffic() {
        let reg = MetricsRegistry::new();
        let ts = TimeSeries::new(8);
        let h = reg.histogram("lat");
        // Old regime: fast requests.
        for _ in 0..1000 {
            h.record(1_000);
        }
        ts.sample(&reg);
        // New regime: slow requests only.
        for _ in 0..100 {
            h.record(1_000_000);
        }
        std::thread::sleep(Duration::from_millis(5));
        ts.sample(&reg);
        let w = ts.window(Duration::from_secs(60)).unwrap();
        let d = w.hist_delta("lat").unwrap();
        assert_eq!(d.count, 100);
        // Whole-histogram p50 is still fast; the *window* p50 is slow.
        assert!(h.percentile(0.5) < 2_000);
        let p50 = d.percentile(0.5);
        let (lo, width) = crate::hist::bucket_bounds(1_000_000);
        assert!(
            p50 >= lo && p50 < lo + width,
            "window p50 {p50} should sit in the slow bucket [{lo}, {})",
            lo + width
        );
        // count_le splits the window at a threshold between regimes.
        assert_eq!(d.count_le(10_000), 0);
        assert_eq!(d.count_le(2_000_000), 100);
        assert_eq!(d.mean() as u64, 1_000_000);
    }

    #[test]
    fn window_requires_two_ticks() {
        let reg = MetricsRegistry::new();
        let ts = TimeSeries::new(4);
        assert!(ts.window(Duration::from_secs(1)).is_none());
        ts.sample(&reg);
        assert!(ts.window(Duration::from_secs(1)).is_none());
    }

    #[test]
    fn sampler_thread_ticks_and_stops() {
        let ts = Arc::new(TimeSeries::new(64));
        let sampler = Sampler::start(Arc::clone(&ts), Duration::from_millis(10), || {});
        let deadline = Instant::now() + Duration::from_secs(5);
        while ts.len() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        sampler.stop();
        assert!(ts.len() >= 3, "sampler must have captured ticks");
    }

    #[test]
    fn env_interval_has_a_floor_and_default() {
        // Only checks the pure parts — the env var itself is shared
        // process state other tests may race on.
        assert_eq!(
            interval_from_env().max(Duration::from_millis(10)),
            interval_from_env()
        );
    }
}
