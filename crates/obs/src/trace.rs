//! Flight recorder: typed trace events in per-thread ring buffers,
//! exported as Chrome trace-event / Perfetto-compatible JSON.
//!
//! Where [`crate::span`] aggregates *totals* per call-tree path, the
//! flight recorder keeps a bounded *timeline*: the last
//! `DVFS_TRACE_CAP` (default 16384) events each thread produced, with
//! monotonic nanosecond timestamps, so a trace of the parallel engine —
//! shard workers, campaign threads, cache hits interleaving — can be
//! opened in `ui.perfetto.dev`.
//!
//! Design constraints, in order:
//!
//! * **Zero steady-state allocation.** Event names and string argument
//!   values are interned once into `u32` ids (leaked `&'static str`s);
//!   the hot record path touches only a fixed array of atomics.
//! * **No locks on the record path.** Each thread owns one ring buffer;
//!   slots are seqlock-stamped (`2·seq+1` while writing, `2·seq+2` when
//!   committed), so the drain — which runs under the registry lock on
//!   whatever thread asks for the trace — can read every buffer without
//!   stopping writers. A slot whose stamp changes mid-read is simply
//!   skipped: the trace is *lossy but bounded*, never torn.
//! * **Cheap when off.** Recording starts with one relaxed atomic load;
//!   when tracing is disabled (the default) every record call is a load
//!   and a branch.
//!
//! The export ([`chrome_trace_json`]) sorts events by timestamp and
//! repairs what ring-buffer wraparound can break: a `E` (end) whose `B`
//! (begin) was overwritten is dropped, and a `B` whose `E` fell off the
//! end is closed at the thread's last known timestamp — so the file is
//! always structurally valid for trace viewers.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

/// What an event means on the timeline (maps to a Chrome trace `ph`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ph: "B"`).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point in time (`ph: "i"`).
    Instant,
    /// A span recorded after the fact with an explicit duration
    /// (`ph: "X"`); `value` is the duration in nanoseconds.
    Complete,
    /// A sampled numeric series (`ph: "C"`); `value` is the `f64` bits.
    Counter,
    /// The start of a flow arrow (`ph: "s"`); `value` is the flow id.
    FlowStart,
    /// The end of a flow arrow (`ph: "f"`); `value` is the flow id.
    FlowEnd,
}

impl EventKind {
    fn code(self) -> u64 {
        match self {
            EventKind::Begin => 1,
            EventKind::End => 2,
            EventKind::Instant => 3,
            EventKind::Complete => 4,
            EventKind::Counter => 5,
            EventKind::FlowStart => 6,
            EventKind::FlowEnd => 7,
        }
    }

    fn from_code(code: u64) -> Option<EventKind> {
        Some(match code {
            1 => EventKind::Begin,
            2 => EventKind::End,
            3 => EventKind::Instant,
            4 => EventKind::Complete,
            5 => EventKind::Counter,
            6 => EventKind::FlowStart,
            7 => EventKind::FlowEnd,
            _ => return None,
        })
    }

    /// The Chrome trace-event phase letter.
    pub fn ph(self) -> &'static str {
        match self {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
            EventKind::Complete => "X",
            EventKind::Counter => "C",
            EventKind::FlowStart => "s",
            EventKind::FlowEnd => "f",
        }
    }
}

/// A typed argument value attached to an event (at most two per event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// A float argument.
    F64(f64),
    /// An integer argument.
    U64(u64),
    /// A boolean argument (cache hit/miss and friends).
    Bool(bool),
    /// An interned string argument (workload names and friends).
    Str(u32),
}

impl ArgValue {
    fn encode(self) -> (u64, u64) {
        match self {
            ArgValue::F64(v) => (1, v.to_bits()),
            ArgValue::U64(v) => (2, v),
            ArgValue::Bool(v) => (3, v as u64),
            ArgValue::Str(id) => (4, u64::from(id)),
        }
    }

    fn decode(kind: u64, bits: u64) -> Option<ArgValue> {
        Some(match kind {
            1 => ArgValue::F64(f64::from_bits(bits)),
            2 => ArgValue::U64(bits),
            3 => ArgValue::Bool(bits != 0),
            4 => ArgValue::Str(bits as u32),
            _ => return None,
        })
    }
}

/// A decoded trace event, as produced by [`drain`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The recording thread's trace id (small integers, assigned in
    /// first-record order; the main thread is usually 1).
    pub tid: u64,
    /// The per-thread sequence number (strictly increasing per tid).
    pub seq: u64,
    /// Monotonic nanoseconds since the process's trace epoch.
    pub ts_ns: u64,
    /// What kind of event this is.
    pub kind: EventKind,
    /// The interned event name (resolve with [`name`]).
    pub name: u32,
    /// Kind-specific payload: duration (ns) for `Complete`, `f64` bits
    /// for `Counter`, the flow id for `FlowStart`/`FlowEnd`, else 0.
    pub value: u64,
    /// Up to two named arguments (interned name, value).
    pub args: [Option<(u32, ArgValue)>; 2],
}

// ---------------------------------------------------------------------------
// String interning
// ---------------------------------------------------------------------------

struct InternTable {
    ids: BTreeMap<&'static str, u32>,
    names: Vec<&'static str>,
}

static INTERN: Mutex<InternTable> = Mutex::new(InternTable {
    ids: BTreeMap::new(),
    names: Vec::new(),
});

thread_local! {
    // Per-thread cache so steady-state interning of a known name is a
    // BTreeMap lookup with no global lock and no allocation.
    static INTERN_CACHE: RefCell<BTreeMap<String, u32>> = const { RefCell::new(BTreeMap::new()) };
}

/// Interns `name`, returning a stable process-wide id. The first call
/// per string leaks it; steady-state calls hit a thread-local cache.
pub fn intern(name: &str) -> u32 {
    INTERN_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(&id) = cache.get(name) {
            return id;
        }
        let mut table = INTERN.lock();
        let id = match table.ids.get(name) {
            Some(&id) => id,
            None => {
                let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
                let id = table.names.len() as u32;
                table.names.push(leaked);
                table.ids.insert(leaked, id);
                id
            }
        };
        drop(table);
        cache.insert(name.to_string(), id);
        id
    })
}

/// Resolves an interned id back to its string (`"?"` for unknown ids).
pub fn name(id: u32) -> &'static str {
    INTERN.lock().names.get(id as usize).copied().unwrap_or("?")
}

// ---------------------------------------------------------------------------
// Per-thread ring buffer (seqlock slots)
// ---------------------------------------------------------------------------

const WORDS: usize = 7;

struct Slot {
    /// 0 = empty; `2·seq+1` = being written; `2·seq+2` = committed.
    stamp: AtomicU64,
    /// Encoded event payload: `[ts_ns, kind<<32|name, value,
    /// arg0_meta, arg0_bits, arg1_meta, arg1_bits]` where `arg_meta`
    /// is `name<<8 | argkind` (0 = no argument).
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; WORDS],
        }
    }
}

/// One thread's fixed-capacity event ring. Single-writer (the owning
/// thread), any-reader (the drain): slot stamps make concurrent reads
/// safe — a reader that races a writer skips the slot instead of
/// observing a torn event.
pub struct RingBuffer {
    tid: u64,
    /// Events ever written (the owner's next sequence number). Owner
    /// writes with relaxed stores; readers only load.
    seq: AtomicU64,
    /// `slots.len() - 1`; the slot count is a power of two so the ring
    /// index is a mask instead of an integer division on the hot path.
    mask: u64,
    slots: Box<[Slot]>,
}

impl RingBuffer {
    /// A standalone ring with at least `capacity` slots (min 2, rounded
    /// up to the next power of two so indexing is a mask). Buffers used
    /// by the global recorder come from [`drain`]'s registry instead.
    pub fn new(tid: u64, capacity: usize) -> RingBuffer {
        let capacity = capacity.max(2).next_power_of_two();
        RingBuffer {
            tid,
            seq: AtomicU64::new(0),
            mask: capacity as u64 - 1,
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
        }
    }

    /// The ring's slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The trace id events from this ring carry.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// Events ever recorded into this ring (not just those retained).
    pub fn written(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Records one event. Called only by the ring's owning thread; the
    /// path is lock-free and allocation-free.
    pub fn record(
        &self,
        ts_ns: u64,
        kind: EventKind,
        name: u32,
        value: u64,
        args: &[(u32, ArgValue)],
    ) {
        let seq = self.seq.load(Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        // Seqlock write: odd stamp, release fence, payload, even stamp.
        slot.stamp.store(2 * seq + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.words[0].store(ts_ns, Ordering::Relaxed);
        slot.words[1].store(kind.code() << 32 | u64::from(name), Ordering::Relaxed);
        slot.words[2].store(value, Ordering::Relaxed);
        for i in 0..2 {
            let (meta, bits) = match args.get(i) {
                Some(&(arg_name, v)) => {
                    let (code, bits) = v.encode();
                    ((u64::from(arg_name) << 8) | code, bits)
                }
                None => (0, 0),
            };
            slot.words[3 + 2 * i].store(meta, Ordering::Relaxed);
            slot.words[4 + 2 * i].store(bits, Ordering::Relaxed);
        }
        slot.stamp.store(2 * seq + 2, Ordering::Release);
        self.seq.store(seq + 1, Ordering::Relaxed);
    }

    /// Snapshots every committed slot, skipping any the owner is
    /// concurrently overwriting. Non-destructive; events come back in
    /// arbitrary slot order (sort by `seq` or `ts_ns`).
    pub fn read_all(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == 0 || stamp % 2 == 1 {
                continue; // empty or mid-write
            }
            let mut words = [0u64; WORDS];
            for (w, word) in words.iter_mut().zip(slot.words.iter()) {
                *w = word.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.stamp.load(Ordering::Relaxed) != stamp {
                continue; // overwritten while we copied
            }
            let seq = stamp / 2 - 1;
            let kind = match EventKind::from_code(words[1] >> 32) {
                Some(k) => k,
                None => continue,
            };
            let mut args = [None, None];
            for (i, arg) in args.iter_mut().enumerate() {
                let meta = words[3 + 2 * i];
                if meta == 0 {
                    continue;
                }
                *arg = ArgValue::decode(meta & 0xff, words[4 + 2 * i])
                    .map(|v| ((meta >> 8) as u32, v));
            }
            out.push(TraceEvent {
                tid: self.tid,
                seq,
                ts_ns: words[0],
                kind,
                name: (words[1] & 0xffff_ffff) as u32,
                value: words[2],
                args,
            });
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Global recorder
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static GENERATION: AtomicU64 = AtomicU64::new(0);
static BUFFERS: Mutex<Vec<Arc<RingBuffer>>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static LOCAL: RefCell<Option<(u64, Arc<RingBuffer>)>> = const { RefCell::new(None) };
}

/// Whether the flight recorder is on. One relaxed load — the entire
/// cost of a record call while tracing is disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the flight recorder on or off. Events recorded while off are
/// simply not recorded; buffers already written are kept.
pub fn set_enabled(on: bool) {
    // Pin the epoch before the first event so timestamps are small.
    let _ = EPOCH.get_or_init(Instant::now);
    ENABLED.store(on, Ordering::Relaxed);
}

/// Per-thread ring capacity: `DVFS_TRACE_CAP` if set and valid, else
/// 16384 events (≈1 MiB/thread). The ring rounds this up to the next
/// power of two.
fn capacity() -> usize {
    let cap = CAPACITY.load(Ordering::Relaxed);
    if cap != 0 {
        return cap;
    }
    let cap = std::env::var("DVFS_TRACE_CAP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(16384);
    CAPACITY.store(cap, Ordering::Relaxed);
    cap
}

/// Monotonic nanoseconds since the trace epoch (first recorder use).
pub fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    let d = epoch.elapsed();
    // u64 arithmetic (not `as_nanos`'s u128): saturates after ~584 years.
    d.as_secs()
        .saturating_mul(1_000_000_000)
        .saturating_add(u64::from(d.subsec_nanos()))
}

fn with_buffer(f: impl FnOnce(&RingBuffer)) {
    LOCAL.with(|local| {
        let generation = GENERATION.load(Ordering::Relaxed);
        let mut local = local.borrow_mut();
        match local.as_ref() {
            Some((g, buf)) if *g == generation => f(buf),
            _ => {
                let buf = Arc::new(RingBuffer::new(
                    NEXT_TID.fetch_add(1, Ordering::Relaxed),
                    capacity(),
                ));
                BUFFERS.lock().push(Arc::clone(&buf));
                f(&buf);
                *local = Some((generation, buf));
            }
        }
    });
}

/// Records an event with an explicit timestamp. Prefer the named
/// helpers ([`begin`], [`instant`], …) unless you measured `ts_ns`
/// yourself (e.g. [`complete`] start times).
#[inline]
pub fn record(ts_ns: u64, kind: EventKind, name: u32, value: u64, args: &[(u32, ArgValue)]) {
    if !enabled() {
        return;
    }
    with_buffer(|buf| buf.record(ts_ns, kind, name, value, args));
}

/// Opens a timeline span (`ph: "B"`). Pair with [`end`] on the same
/// thread.
#[inline]
pub fn begin(name: u32) {
    if !enabled() {
        return;
    }
    record(now_ns(), EventKind::Begin, name, 0, &[]);
}

/// Closes the innermost open timeline span (`ph: "E"`).
#[inline]
pub fn end(name: u32) {
    if !enabled() {
        return;
    }
    record(now_ns(), EventKind::End, name, 0, &[]);
}

/// Marks a point in time (`ph: "i"`) carrying up to two arguments.
#[inline]
pub fn instant(name: u32, args: &[(u32, ArgValue)]) {
    if !enabled() {
        return;
    }
    record(now_ns(), EventKind::Instant, name, 0, args);
}

/// Records a span after the fact (`ph: "X"`): it started at `start_ns`
/// (from [`now_ns`]) and ends now. The one-event form the hot paths
/// use — no B/E pairing to lose to wraparound.
#[inline]
pub fn complete(name: u32, start_ns: u64, args: &[(u32, ArgValue)]) {
    if !enabled() {
        return;
    }
    let end = now_ns();
    record(
        start_ns,
        EventKind::Complete,
        name,
        end.saturating_sub(start_ns),
        args,
    );
}

/// Samples a counter series (`ph: "C"`), e.g. a per-epoch loss.
#[inline]
pub fn counter(name: u32, value: f64) {
    if !enabled() {
        return;
    }
    record(now_ns(), EventKind::Counter, name, value.to_bits(), &[]);
}

/// Starts a flow arrow (`ph: "s"`) with `flow_id` linking it to the
/// matching [`flow_end`].
#[inline]
pub fn flow_start(name: u32, flow_id: u64) {
    if !enabled() {
        return;
    }
    record(now_ns(), EventKind::FlowStart, name, flow_id, &[]);
}

/// Ends a flow arrow (`ph: "f"`).
#[inline]
pub fn flow_end(name: u32, flow_id: u64) {
    if !enabled() {
        return;
    }
    record(now_ns(), EventKind::FlowEnd, name, flow_id, &[]);
}

/// Statistics about what the drain saw.
#[derive(Debug, Clone, Copy, Default)]
pub struct DrainStats {
    /// Threads that have recorded at least one event.
    pub threads: usize,
    /// Events returned by this drain.
    pub retained: u64,
    /// Events written but no longer retrievable (overwritten by ring
    /// wraparound or skipped mid-write). Lossy-but-bounded by design.
    pub dropped: u64,
}

/// Snapshots every thread's ring under the registry lock, merged and
/// sorted by `(ts_ns, tid, seq)`. Non-destructive: draining twice
/// returns the same (or more) events. Also publishes
/// `trace.events_retained` / `trace.events_dropped` counters.
pub fn drain() -> (Vec<TraceEvent>, DrainStats) {
    let buffers = BUFFERS.lock();
    let mut events = Vec::new();
    let mut stats = DrainStats {
        threads: buffers.len(),
        ..Default::default()
    };
    let mut written = 0u64;
    for buf in buffers.iter() {
        written += buf.written();
        events.extend(buf.read_all());
    }
    drop(buffers);
    events.sort_by_key(|e| (e.ts_ns, e.tid, e.seq));
    stats.retained = events.len() as u64;
    stats.dropped = written.saturating_sub(stats.retained);
    crate::global()
        .counter("trace.events_retained")
        .set(stats.retained);
    crate::global()
        .counter("trace.events_dropped")
        .set(stats.dropped);
    (events, stats)
}

/// Disables tracing and detaches every thread's ring so the next event
/// starts a fresh buffer. For tests; racing writers on other threads
/// may still land events in the old generation's buffers, which are
/// discarded here.
pub fn reset() {
    ENABLED.store(false, Ordering::Relaxed);
    GENERATION.fetch_add(1, Ordering::Relaxed);
    BUFFERS.lock().clear();
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_args(out: &mut String, args: &[Option<(u32, ArgValue)>; 2]) {
    let present: Vec<&(u32, ArgValue)> = args.iter().flatten().collect();
    if present.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    for (i, (arg_name, value)) in present.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, name(*arg_name));
        out.push_str("\":");
        match value {
            ArgValue::F64(v) if v.is_finite() => out.push_str(&format!("{v}")),
            ArgValue::F64(v) => out.push_str(&format!("\"{v}\"")),
            ArgValue::U64(v) => out.push_str(&format!("{v}")),
            ArgValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            ArgValue::Str(id) => {
                out.push('"');
                escape_into(out, name(*id));
                out.push('"');
            }
        }
    }
    out.push('}');
}

fn push_event(out: &mut String, first: &mut bool, e: &TraceEvent) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let ts_us = e.ts_ns as f64 / 1000.0;
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3}",
        {
            let mut n = String::new();
            escape_into(&mut n, name(e.name));
            n
        },
        e.kind.ph(),
        e.tid
    ));
    match e.kind {
        EventKind::Complete => {
            out.push_str(&format!(",\"dur\":{:.3}", e.value as f64 / 1000.0));
        }
        EventKind::Counter => {
            let v = f64::from_bits(e.value);
            out.push_str(&format!(
                ",\"args\":{{\"value\":{}}}",
                if v.is_finite() {
                    format!("{v}")
                } else {
                    format!("\"{v}\"")
                }
            ));
            out.push('}');
            return;
        }
        EventKind::Instant => out.push_str(",\"s\":\"t\""),
        EventKind::FlowStart | EventKind::FlowEnd => {
            out.push_str(&format!(",\"cat\":\"flow\",\"id\":{}", e.value));
            if e.kind == EventKind::FlowEnd {
                out.push_str(",\"bp\":\"e\"");
            }
        }
        _ => {}
    }
    push_args(out, &e.args);
    out.push('}');
}

/// Renders events as a Chrome trace-event JSON document
/// (`{"traceEvents": [...]}`) that loads in `chrome://tracing` and
/// `ui.perfetto.dev`.
///
/// Ring wraparound can leave `B`/`E` pairs unmatched; the export keeps
/// the file structurally valid by dropping an `E` whose `B` was lost
/// and synthesizing an `E` (at the thread's last timestamp) for a `B`
/// whose `E` was lost.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    // Per-tid open-span stacks for sanitization, and last-seen ts.
    let mut open: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    for e in events {
        let ts = last_ts.entry(e.tid).or_insert(0);
        *ts = (*ts).max(e.ts_ns);
        match e.kind {
            EventKind::Begin => {
                open.entry(e.tid).or_default().push(e);
                push_event(&mut out, &mut first, e);
            }
            EventKind::End => {
                // Keep an end only when it closes the innermost open
                // begin *by name*; anything else means this end's begin
                // (or an intervening end) fell off the ring — drop it,
                // the unmatched begins get synthesized closers below.
                let stack = open.entry(e.tid).or_default();
                if stack.last().is_some_and(|b| b.name == e.name) {
                    stack.pop();
                    push_event(&mut out, &mut first, e);
                }
            }
            _ => push_event(&mut out, &mut first, e),
        }
    }
    // Close spans whose end fell off the ring (or never happened).
    for (tid, stack) in &open {
        let ts = last_ts.get(tid).copied().unwrap_or(0);
        for b in stack.iter().rev() {
            let closer = TraceEvent {
                ts_ns: ts,
                kind: EventKind::End,
                value: 0,
                args: [None, None],
                ..(*b).clone()
            };
            push_event(&mut out, &mut first, &closer);
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Drains the recorder and writes the Chrome trace JSON to `path`.
/// Returns the drain statistics.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<DrainStats> {
    let (events, stats) = drain();
    std::fs::write(path, chrome_trace_json(&events))?;
    Ok(stats)
}

/// Tests that toggle the global recorder serialize on this lock (it
/// spans modules: span tests use it too).
#[cfg(test)]
pub(crate) static GLOBAL_TRACE_TESTS: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_resolvable() {
        let a = intern("trace-test-intern-a");
        let b = intern("trace-test-intern-b");
        assert_ne!(a, b);
        assert_eq!(intern("trace-test-intern-a"), a);
        assert_eq!(name(a), "trace-test-intern-a");
        assert_eq!(name(u32::MAX), "?");
    }

    #[test]
    fn ring_roundtrips_every_field() {
        let ring = RingBuffer::new(7, 16);
        let n = intern("rt-event");
        let an = intern("rt-arg");
        let ws = intern("rt-wl");
        ring.record(
            123,
            EventKind::Complete,
            n,
            456,
            &[(an, ArgValue::Bool(true)), (ws, ArgValue::Str(ws))],
        );
        ring.record(124, EventKind::Counter, n, 2.5f64.to_bits(), &[]);
        let mut events = ring.read_all();
        events.sort_by_key(|e| e.seq);
        assert_eq!(events.len(), 2);
        let e = &events[0];
        assert_eq!((e.tid, e.seq, e.ts_ns), (7, 0, 123));
        assert_eq!(e.kind, EventKind::Complete);
        assert_eq!(e.name, n);
        assert_eq!(e.value, 456);
        assert_eq!(e.args[0], Some((an, ArgValue::Bool(true))));
        assert_eq!(e.args[1], Some((ws, ArgValue::Str(ws))));
        assert_eq!(events[1].kind, EventKind::Counter);
        assert_eq!(f64::from_bits(events[1].value), 2.5);
        assert_eq!(events[1].args, [None, None]);
    }

    #[test]
    fn wraparound_keeps_the_newest_events() {
        let ring = RingBuffer::new(1, 8);
        let n = intern("wrap-event");
        for i in 0..20u64 {
            ring.record(i, EventKind::Instant, n, 0, &[]);
        }
        assert_eq!(ring.written(), 20);
        let mut events = ring.read_all();
        events.sort_by_key(|e| e.seq);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
        // Timestamps ride along with their sequence numbers.
        assert!(events.iter().all(|e| e.ts_ns == e.seq));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _guard = GLOBAL_TRACE_TESTS.lock();
        reset();
        let n = intern("disabled-event");
        instant(n, &[]);
        let (events, _) = drain();
        assert!(events.iter().all(|e| e.name != n));
    }

    #[test]
    fn global_drain_merges_sorted_and_counts_drops() {
        let _guard = GLOBAL_TRACE_TESTS.lock();
        reset();
        set_enabled(true);
        let n = intern("drain-event");
        for _ in 0..5 {
            instant(n, &[]);
        }
        let (events, stats) = drain();
        set_enabled(false);
        let mine: Vec<&TraceEvent> = events.iter().filter(|e| e.name == n).collect();
        assert_eq!(mine.len(), 5);
        assert!(stats.retained >= 5);
        for pair in events.windows(2) {
            assert!(
                (pair[0].ts_ns, pair[0].tid, pair[0].seq)
                    <= (pair[1].ts_ns, pair[1].tid, pair[1].seq),
                "drain output must be sorted"
            );
        }
    }

    #[test]
    fn export_is_valid_and_sanitizes_unbalanced_spans() {
        let b = intern("x-begin");
        let orphan = intern("x-orphan-end");
        let events = vec![
            TraceEvent {
                tid: 1,
                seq: 0,
                ts_ns: 1000,
                kind: EventKind::End, // begin fell off the ring
                name: orphan,
                value: 0,
                args: [None, None],
            },
            TraceEvent {
                tid: 1,
                seq: 1,
                ts_ns: 2000,
                kind: EventKind::Begin, // end fell off the ring
                name: b,
                value: 0,
                args: [None, None],
            },
            TraceEvent {
                tid: 1,
                seq: 2,
                ts_ns: 3000,
                kind: EventKind::Instant,
                name: intern("x-instant"),
                value: 0,
                args: [Some((intern("hit"), ArgValue::Bool(false))), None],
            },
        ];
        let json = chrome_trace_json(&events);
        // Orphan end dropped; dangling begin closed at the last ts.
        assert!(!json.contains("x-orphan-end"));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
        assert!(json.contains("\"ts\":3.000"), "closer at last ts: {json}");
        assert!(json.contains("\"args\":{\"hit\":false}"));
        assert!(json.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn complete_events_carry_duration_in_microseconds() {
        let events = vec![TraceEvent {
            tid: 2,
            seq: 0,
            ts_ns: 1_500,
            kind: EventKind::Complete,
            name: intern("x-complete"),
            value: 2_500,
            args: [None, None],
        }];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.500"));
    }

    #[test]
    fn counter_and_flow_events_export_their_payloads() {
        let events = vec![
            TraceEvent {
                tid: 1,
                seq: 0,
                ts_ns: 10,
                kind: EventKind::Counter,
                name: intern("x-loss"),
                value: 0.125f64.to_bits(),
                args: [None, None],
            },
            TraceEvent {
                tid: 1,
                seq: 1,
                ts_ns: 20,
                kind: EventKind::FlowStart,
                name: intern("x-flow"),
                value: 42,
                args: [None, None],
            },
            TraceEvent {
                tid: 2,
                seq: 0,
                ts_ns: 30,
                kind: EventKind::FlowEnd,
                name: intern("x-flow"),
                value: 42,
                args: [None, None],
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("{\"value\":0.125}"));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"id\":42"));
        assert!(json.contains("\"bp\":\"e\""));
    }

    #[test]
    fn json_strings_are_escaped() {
        let tricky = intern("quote\"back\\slash");
        let events = vec![TraceEvent {
            tid: 1,
            seq: 0,
            ts_ns: 0,
            kind: EventKind::Instant,
            name: tricky,
            value: 0,
            args: [None, None],
        }];
        let json = chrome_trace_json(&events);
        assert!(json.contains("quote\\\"back\\\\slash"));
    }
}
