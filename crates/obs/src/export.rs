//! Exporters: human-readable table (for stderr) and machine-readable
//! JSON (via the compat `serde_json`).
//!
//! A [`MetricsSnapshot`] combines a registry snapshot with the span
//! call-tree and any *extra* JSON sections commands attached (e.g. the
//! CLI `train` path attaches its loss curves), so one export call
//! captures everything observable about the process.

use crate::hist::HistogramSnapshot;
use crate::metrics::{global, MetricsRegistry};
use crate::span::{self, SpanStat};
use parking_lot::Mutex;
use serde::value::Value;
use std::fmt::Write as _;

static EXTRAS: Mutex<Vec<(String, Value)>> = Mutex::new(Vec::new());

/// Attaches an extra top-level JSON section to subsequent exports,
/// replacing any previous section with the same name. Used for
/// structured payloads that aren't scalar metrics (loss curves,
/// per-request tables).
pub fn attach_json(name: &str, value: Value) {
    let mut extras = EXTRAS.lock();
    if let Some(slot) = extras.iter_mut().find(|(n, _)| n == name) {
        slot.1 = value;
    } else {
        extras.push((name.to_string(), value));
    }
}

/// Drops all attached extra sections. For tests.
pub fn clear_extras() {
    EXTRAS.lock().clear();
}

/// Everything observable at one point in time: metrics, span call-tree,
/// attached extras.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` histograms, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(path, stats)` span aggregates, path-sorted (parents group
    /// directly above their children).
    pub spans: Vec<(String, SpanStat)>,
    /// Extra JSON sections attached via [`attach_json`].
    pub extras: Vec<(String, Value)>,
}

impl MetricsSnapshot {
    /// Snapshot of one registry only — no spans, no extras. For tests
    /// and embedders with their own registries.
    pub fn of_registry(registry: &MetricsRegistry) -> Self {
        let reg = registry.snapshot();
        Self {
            counters: reg.counters,
            gauges: reg.gauges,
            histograms: reg.histograms,
            spans: Vec::new(),
            extras: Vec::new(),
        }
    }

    /// Snapshot of the global registry plus the span table and extras —
    /// what `--metrics` exports.
    pub fn global() -> Self {
        let mut snap = Self::of_registry(global());
        snap.spans = span::snapshot();
        snap.extras = EXTRAS.lock().clone();
        snap
    }

    /// The snapshot as a JSON value tree.
    pub fn to_json_value(&self) -> Value {
        let obj = Value::Object;
        let num = Value::Num;
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), num(*v as f64)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), num(*v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    obj(vec![
                        ("count".into(), num(h.count as f64)),
                        ("mean".into(), num(h.mean)),
                        ("min".into(), num(h.min as f64)),
                        ("max".into(), num(h.max as f64)),
                        ("p50".into(), num(h.p50 as f64)),
                        ("p90".into(), num(h.p90 as f64)),
                        ("p99".into(), num(h.p99 as f64)),
                    ]),
                )
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|(path, s)| {
                (
                    path.clone(),
                    obj(vec![
                        ("count".into(), num(s.count as f64)),
                        ("total_ns".into(), num(s.total_ns as f64)),
                        ("mean_ns".into(), num(s.mean_ns())),
                        ("max_ns".into(), num(s.max_ns as f64)),
                    ]),
                )
            })
            .collect();
        let mut root = vec![
            ("counters".to_string(), obj(counters)),
            ("gauges".to_string(), obj(gauges)),
            ("histograms".to_string(), obj(histograms)),
            ("spans".to_string(), obj(spans)),
        ];
        root.extend(self.extras.iter().cloned());
        Value::Object(root)
    }

    /// The snapshot as pretty-printed JSON text.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_json_value()).expect("value trees always serialize")
    }

    /// The snapshot as an aligned human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== metrics ==");
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<40} {v:>12.4}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<40} n={:<8} mean={:<10} p50={:<10} p90={:<10} p99={:<10} max={}",
                    h.count,
                    fmt_ns(h.mean),
                    fmt_ns(h.p50 as f64),
                    fmt_ns(h.p90 as f64),
                    fmt_ns(h.p99 as f64),
                    fmt_ns(h.max as f64),
                );
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "spans:");
            for (path, s) in &self.spans {
                // Indent by call-tree depth so nesting reads at a glance.
                let depth = path.matches('/').count();
                let name = path.rsplit('/').next().unwrap_or(path);
                let _ = writeln!(
                    out,
                    "  {:indent$}{name:<width$} n={:<6} total={:<10} mean={:<10} max={}",
                    "",
                    s.count,
                    fmt_ns(s.total_ns as f64),
                    fmt_ns(s.mean_ns()),
                    fmt_ns(s.max_ns as f64),
                    indent = depth * 2,
                    width = 40usize.saturating_sub(depth * 2),
                );
            }
        }
        out
    }
}

/// Formats a nanosecond quantity with a human-readable unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.counter("cache.hits").add(24);
        reg.counter("cache.misses").add(8);
        reg.gauge("cache.hit_rate").set(0.75);
        let h = reg.histogram("request_ns");
        for v in [800u64, 900, 1_000, 1_500, 40_000] {
            h.record(v);
        }
        let mut snap = MetricsSnapshot::of_registry(&reg);
        snap.spans = vec![(
            "batch/serve".to_string(),
            SpanStat {
                count: 1,
                total_ns: 5_000_000,
                max_ns: 5_000_000,
            },
        )];
        snap
    }

    #[test]
    fn json_round_trips_through_compat_serde_json() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let parsed: Value = serde_json::from_str(&json).expect("exporter emits valid JSON");
        let counters = parsed.get("counters").expect("counters section");
        assert_eq!(counters.get("cache.hits").unwrap().as_f64(), Some(24.0));
        assert_eq!(counters.get("cache.misses").unwrap().as_f64(), Some(8.0));
        assert_eq!(
            parsed
                .get("gauges")
                .and_then(|g| g.get("cache.hit_rate"))
                .and_then(Value::as_f64),
            Some(0.75)
        );
        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("request_ns"))
            .expect("histogram section");
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(5.0));
        for key in ["p50", "p90", "p99", "max", "mean", "min"] {
            assert!(hist.get(key).unwrap().as_f64().is_some(), "missing {key}");
        }
        let span = parsed
            .get("spans")
            .and_then(|s| s.get("batch/serve"))
            .expect("span section");
        assert_eq!(span.get("total_ns").unwrap().as_f64(), Some(5_000_000.0));
        // And the whole tree survives a second round-trip bit-for-bit.
        let reparsed: Value =
            serde_json::from_str(&serde_json::to_string(&parsed).unwrap()).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn extras_merge_into_the_export_and_replace_by_name() {
        clear_extras();
        attach_json("training", Value::Num(1.0));
        attach_json("training", Value::Num(2.0));
        let mut snap = sample_snapshot();
        snap.extras = vec![("training".to_string(), Value::Num(2.0))];
        let parsed: Value = serde_json::from_str(&snap.to_json()).unwrap();
        assert_eq!(parsed.get("training").unwrap().as_f64(), Some(2.0));
        clear_extras();
    }

    #[test]
    fn table_renders_every_section() {
        let table = sample_snapshot().render_table();
        for needle in [
            "counters:",
            "cache.hits",
            "gauges:",
            "histograms:",
            "request_ns",
            "spans:",
            "serve",
        ] {
            assert!(table.contains(needle), "table missing {needle}:\n{table}");
        }
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(12.0), "12ns");
        assert_eq!(fmt_ns(1_500.0), "1.5µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.5ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00s");
    }
}
