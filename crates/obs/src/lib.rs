//! # obs — self-instrumentation for the DVFS stack
//!
//! Hermetic (no external dependencies beyond the in-tree `compat/`
//! crates) observability for *our own* pipeline: where `telemetry` is
//! the DCGM stand-in that profiles the synthetic GPU, `obs` watches the
//! training/prediction/serving code itself.
//!
//! Five pieces:
//!
//! * [`span!`] / [`span::Span`] — RAII tracing spans with nesting, wall
//!   clock timing, and a per-thread span stack that aggregates into a
//!   call-tree summary (`pipeline/train/epoch`);
//! * [`metrics::MetricsRegistry`] — named counters, gauges, and
//!   log-linear [`hist::Histogram`]s (p50/p90/p99/max). Lock-cheap: the
//!   registry mutex is taken only on name registration, all handles are
//!   shared atomics;
//! * [`export::MetricsSnapshot`] — human-readable table to stderr and
//!   machine-readable JSON via the compat `serde_json`, surfaced by the
//!   CLI's `--metrics[=json|table]` / `--metrics-out <path>` flags;
//! * [`trace`] — the flight recorder: typed timeline events in
//!   per-thread ring buffers (lock-free, zero steady-state allocation),
//!   exported as Chrome trace-event / Perfetto JSON by the CLI's
//!   `--trace-out <path>` flag. Every [`span!`] lands on the timeline
//!   automatically while tracing is enabled;
//! * [`quality`] — the model-drift monitor: rolling MAPE / max-APE over
//!   the last N predicted-vs-observed pairs per model, with an alert
//!   band that fires once per crossing (counter + `log!(Warn, …)` +
//!   trace instant). Reported by `dvfs monitor`;
//! * [`prom`] — Prometheus text exposition (0.0.4) of a registry, with
//!   log-linear histograms exported as cumulative
//!   `_bucket`/`_sum`/`_count` series, plus a strict validating parser;
//! * [`timeseries`] — a fixed-capacity ring of periodic registry
//!   snapshots (background [`timeseries::Sampler`], `DVFS_TS_INTERVAL`)
//!   answering windowed queries — rates, ratios, per-window percentiles
//!   — via snapshot deltas;
//! * [`slo`] — declarative objectives (latency threshold, error ratio,
//!   gauge band) with fast/slow multi-window burn-rate alerting,
//!   edge-triggered like the quality monitor;
//! * [`journal`] — the decision journal: an append-only segmented
//!   binary log (length prefix + CRC32 per record, size-based rotation
//!   under a disk budget, torn-tail truncation on open) fed by bounded
//!   per-producer rings drained by one writer thread — producers never
//!   block, a full ring drops and counts `journal.dropped`.
//!
//! Plus [`log!`], a leveled stderr logger filtered by the `DVFS_LOG`
//! environment variable (`off|error|warn|info|debug`, default `info`).
//!
//! ```
//! let requests = obs::global().counter("server.requests");
//! let latency = obs::global().histogram("server.latency_ns");
//! {
//!     obs::span!("serve");
//!     requests.inc();
//!     latency.record(800);
//! }
//! obs::log!(Info, "served {} request(s)", requests.get());
//! let snapshot = obs::MetricsSnapshot::global();
//! assert!(snapshot.to_json().contains("server.requests"));
//! ```

pub mod export;
pub mod hist;
pub mod journal;
pub mod log;
pub mod metrics;
pub mod prom;
pub mod quality;
pub mod slo;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use export::{attach_json, fmt_ns, MetricsSnapshot};
pub use hist::{Histogram, HistogramSnapshot};
pub use journal::{JournalConfig, JournalProducer, JournalRecord, JournalWriter};
pub use log::Level;
pub use metrics::{global, Counter, Gauge, MetricsRegistry};
pub use quality::{QualityConfig, QualityMonitor, QualityStat};
pub use serde::value::Value;
pub use slo::{SloEngine, SloKind, SloSpec, SloStatus};
pub use span::{Span, SpanStat};
pub use timeseries::{HistDelta, Sampler, TimeSeries, Window};
pub use trace::{ArgValue, EventKind, TraceEvent};

/// Opens a tracing span for the rest of the enclosing scope.
///
/// ```
/// fn phase() {
///     obs::span!("phase");
///     // ... timed work ...
/// } // recorded on scope exit
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _obs_span_guard = $crate::span::Span::enter($name);
    };
}

/// Logs a leveled line to stderr, subject to the `DVFS_LOG` filter.
///
/// The first argument is a bare [`Level`] variant name:
///
/// ```
/// obs::log!(Info, "trained {} epochs", 25);
/// obs::log!(Debug, "cache key = {:?}", (1, 2));
/// ```
#[macro_export]
macro_rules! log {
    ($level:ident, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::$level) {
            $crate::log::write($crate::log::Level::$level, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn doc_example_flow_composes() {
        let reg = crate::MetricsRegistry::new();
        let c = reg.counter("requests");
        let h = reg.histogram("latency");
        {
            crate::span!("lib-doc-span");
            c.inc();
            h.record(123);
        }
        crate::log!(Debug, "composed {} request(s)", c.get());
        assert_eq!(c.get(), 1);
        assert_eq!(h.count(), 1);
        assert!(crate::span::stat("lib-doc-span").is_some());
    }
}
