//! Prometheus text exposition (format version 0.0.4) for a
//! [`MetricsRegistry`], plus a strict parser used by tests and the
//! `validate_prom` example to verify scrape output.
//!
//! Counters and gauges render as single samples; log-linear
//! [`Histogram`]s render in the native Prometheus histogram shape:
//! cumulative `_bucket{le="..."}` series over the non-empty buckets
//! (each `le` is the bucket's inclusive integer upper edge), a
//! `+Inf` bucket equal to the total count, `_sum`, and `_count`.
//!
//! Registry names use dots (`serve.request_ns`); Prometheus names must
//! match `[a-zA-Z_:][a-zA-Z0-9_:]*`, so [`sanitize_name`] maps every
//! illegal character to `_`. HELP text and label values are escaped per
//! the exposition spec (`\\`, `\n`, and `\"` in label values).

use crate::hist::{bounds_of_index, Histogram};
use crate::metrics::MetricsRegistry;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The `Content-Type` a scrape endpoint should declare for this output.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Maps a registry metric name onto the Prometheus name charset:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Dots (our namespace separator) and any
/// other illegal character become `_`; a leading digit gains a `_`
/// prefix. Empty names become `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
            out.push(ch);
            continue;
        }
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a HELP line per the exposition format: backslash and
/// newline only.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double-quote, newline.
fn escape_label_value(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Incremental builder for one exposition document. The registry-level
/// [`render`] drives this; servers append process-level extras (e.g. a
/// `build_info` metric with version labels) through the same builder so
/// everything shares the escaping rules.
#[derive(Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Appends a counter sample. `source` names the registry metric the
    /// sample came from (shown in HELP).
    pub fn counter(&mut self, name: &str, source: &str, value: u64) {
        let name = sanitize_name(name);
        self.header(&name, &format!("dvfs counter `{source}`"), "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Appends a gauge sample. Non-finite values render as Prometheus
    /// `NaN`/`+Inf`/`-Inf` literals.
    pub fn gauge(&mut self, name: &str, source: &str, value: f64) {
        let name = sanitize_name(name);
        self.header(&name, &format!("dvfs gauge `{source}`"), "gauge");
        let _ = writeln!(self.out, "{name} {}", fmt_f64(value));
    }

    /// Appends an info-style gauge: constant value 1 with identifying
    /// labels (the `build_info` idiom).
    pub fn info(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) {
        let name = sanitize_name(name);
        self.header(&name, help, "gauge");
        let rendered: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label_value(v)))
            .collect();
        let _ = writeln!(self.out, "{name}{{{}}} 1", rendered.join(","));
    }

    /// Appends a full histogram: cumulative buckets over the non-empty
    /// log-linear buckets, `+Inf`, `_sum`, `_count`.
    pub fn histogram(&mut self, name: &str, source: &str, hist: &Histogram) {
        let name = sanitize_name(name);
        self.header(&name, &format!("dvfs histogram `{source}`"), "histogram");
        let mut cumulative = 0u64;
        for (index, count) in hist.sparse_buckets() {
            cumulative += count;
            let (lo, width) = bounds_of_index(index);
            // Recorded values are integers, so the inclusive upper edge
            // `lo + width - 1` is an exact `le` boundary.
            let le = lo + (width - 1);
            let _ = writeln!(self.out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let count = hist.count();
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(self.out, "{name}_sum {}", hist.sum());
        let _ = writeln!(self.out, "{name}_count {count}");
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders every metric in `registry` as one exposition document:
/// counters, gauges, then histograms, each name-sorted.
pub fn render(registry: &MetricsRegistry) -> String {
    render_with(registry, &[])
}

/// An info-style metric to append to a rendered document: name, help
/// text, and the constant `(key, value)` label pairs carrying the
/// actual information (e.g. `build_info{version="...", git="..."}`).
pub type InfoMetric<'a> = (&'a str, &'a str, &'a [(&'a str, &'a str)]);

/// [`render`] plus appended info-style metrics, e.g. `build_info`.
pub fn render_with(registry: &MetricsRegistry, infos: &[InfoMetric]) -> String {
    let snap = registry.snapshot();
    let mut doc = PromText::new();
    for (name, value) in &snap.counters {
        doc.counter(name, name, *value);
    }
    for (name, value) in &snap.gauges {
        doc.gauge(name, name, *value);
    }
    for (name, hist) in registry.histogram_entries() {
        doc.histogram(&name, &name, &hist);
    }
    for (name, help, labels) in infos {
        doc.info(name, help, labels);
    }
    doc.finish()
}

/// One parsed histogram from an exposition document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedHistogram {
    /// Cumulative `(le, count)` pairs in document order, excluding
    /// `+Inf`.
    pub buckets: Vec<(f64, u64)>,
    /// The `+Inf` bucket value.
    pub inf: u64,
    /// The `_sum` sample.
    pub sum: f64,
    /// The `_count` sample.
    pub count: u64,
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedProm {
    /// Counter samples by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge samples by name (label-less only; labeled gauges such as
    /// info metrics land in `infos`).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by base name.
    pub histograms: BTreeMap<String, ParsedHistogram>,
    /// Labeled single-sample metrics (e.g. `build_info`): name → raw
    /// label block text.
    pub infos: BTreeMap<String, String>,
}

/// Parses and validates an exposition document produced by [`render`].
///
/// Strict on the invariants scrapers rely on: every sample must follow a
/// `# TYPE` declaration for its base name, names must match the legal
/// charset, histogram buckets must be cumulative (non-decreasing) with
/// `+Inf == _count`, and values must parse. Returns the first violation
/// as `Err`.
pub fn parse(text: &str) -> Result<ParsedProm, String> {
    let mut out = ParsedProm::default();
    // Base metric name -> declared type.
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| Err(format!("line {}: {msg}", lineno + 1));
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                return err("malformed TYPE line".into());
            };
            if !is_legal_name(name) {
                return err(format!("illegal metric name `{name}`"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return err(format!("duplicate TYPE for `{name}`"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.rfind(' ') {
            Some(i) => (&line[..i], line[i + 1..].trim()),
            None => return err("sample line without value".into()),
        };
        let (name, labels) = match name_part.find('{') {
            Some(i) => {
                let Some(close) = name_part.rfind('}') else {
                    return err("unclosed label block".into());
                };
                (&name_part[..i], Some(&name_part[i + 1..close]))
            }
            None => (name_part, None),
        };
        if !is_legal_name(name) {
            return err(format!("illegal metric name `{name}`"));
        }
        // Histogram series names carry a suffix; resolve the base name
        // the TYPE declaration used.
        let (base, suffix) = split_histogram_suffix(name, &types);
        let Some(kind) = types.get(base) else {
            return err(format!("sample `{name}` without TYPE declaration"));
        };
        match (kind.as_str(), suffix) {
            ("counter", None) => {
                let v = parse_u64(value_part).map_err(|e| format!("line {}: {e}", lineno + 1))?;
                out.counters.insert(name.to_string(), v);
            }
            ("gauge", None) => {
                if let Some(labels) = labels {
                    out.infos.insert(name.to_string(), labels.to_string());
                } else {
                    let v =
                        parse_f64(value_part).map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    out.gauges.insert(name.to_string(), v);
                }
            }
            ("histogram", Some(suffix)) => {
                let h = out.histograms.entry(base.to_string()).or_default();
                match suffix {
                    "_bucket" => {
                        let Some(labels) = labels else {
                            return err("histogram bucket without le label".into());
                        };
                        let Some(le_raw) = labels
                            .strip_prefix("le=\"")
                            .and_then(|r| r.strip_suffix('"'))
                        else {
                            return err(format!("malformed bucket labels `{labels}`"));
                        };
                        let v = parse_u64(value_part)
                            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                        if le_raw == "+Inf" {
                            h.inf = v;
                        } else {
                            let le = parse_f64(le_raw)
                                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                            if let Some(&(prev_le, prev_v)) = h.buckets.last() {
                                if le <= prev_le {
                                    return err(format!(
                                        "bucket le {le} not increasing after {prev_le}"
                                    ));
                                }
                                if v < prev_v {
                                    return err(format!(
                                        "bucket count {v} decreased after {prev_v} (must be cumulative)"
                                    ));
                                }
                            }
                            h.buckets.push((le, v));
                        }
                    }
                    "_sum" => {
                        h.sum = parse_f64(value_part)
                            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    }
                    "_count" => {
                        h.count = parse_u64(value_part)
                            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    }
                    other => return err(format!("unknown histogram suffix `{other}`")),
                }
            }
            (kind, _) => {
                return err(format!("sample `{name}` does not fit TYPE {kind}"));
            }
        }
    }
    // Cross-series invariants.
    for (name, h) in &out.histograms {
        if h.inf != h.count {
            return Err(format!(
                "histogram `{name}`: +Inf bucket {} != _count {}",
                h.inf, h.count
            ));
        }
        if let Some(&(_, last)) = h.buckets.last() {
            if last > h.count {
                return Err(format!(
                    "histogram `{name}`: last bucket {last} exceeds _count {}",
                    h.count
                ));
            }
        }
    }
    Ok(out)
}

fn is_legal_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// If `name` ends in a histogram suffix and the stripped base has a
/// `histogram` TYPE declaration, returns `(base, Some(suffix))`.
fn split_histogram_suffix<'a>(
    name: &'a str,
    types: &BTreeMap<String, String>,
) -> (&'a str, Option<&'static str>) {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).is_some_and(|k| k == "histogram") {
                return (base, Some(suffix));
            }
        }
    }
    (name, None)
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("bad u64 `{s}`"))
}

fn parse_f64(s: &str) -> Result<f64, String> {
    match s {
        "NaN" => Ok(f64::NAN),
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        _ => s.parse::<f64>().map_err(|_| format!("bad f64 `{s}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize_name("serve.request_ns"), "serve_request_ns");
        assert_eq!(sanitize_name("quality.power.mape"), "quality_power_mape");
        assert_eq!(sanitize_name("99th"), "_99th");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name(""), "_");
        assert!(is_legal_name(&sanitize_name("7.weird-name!")));
    }

    #[test]
    fn render_round_trips_through_parse() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests").add(42);
        reg.gauge("cache.hit_rate").set(0.875);
        let h = reg.histogram("serve.request_ns");
        for v in [100u64, 1000, 1000, 50_000] {
            h.record(v);
        }
        let text = render(&reg);
        let parsed = parse(&text).expect("render output must parse");
        assert_eq!(parsed.counters["serve_requests"], 42);
        assert_eq!(parsed.gauges["cache_hit_rate"], 0.875);
        let ph = &parsed.histograms["serve_request_ns"];
        assert_eq!(ph.count, 4);
        assert_eq!(ph.inf, 4);
        assert_eq!(ph.sum, 52_100.0);
        assert_eq!(ph.buckets.last().unwrap().1, 4);
    }

    #[test]
    fn info_metric_escapes_label_values() {
        let mut doc = PromText::new();
        doc.info(
            "dvfs_build_info",
            "build metadata",
            &[("version", "0.1.0"), ("note", "a\"b\\c\nd")],
        );
        let text = doc.finish();
        assert!(text.contains(r#"note="a\"b\\c\nd""#), "got: {text}");
        let parsed = parse(&text).unwrap();
        assert!(parsed.infos.contains_key("dvfs_build_info"));
    }

    #[test]
    fn help_lines_escape_newlines_and_backslashes() {
        let mut doc = PromText::new();
        doc.counter("weird", "a\\b\nc", 1);
        let text = doc.finish();
        assert!(text.contains("# HELP weird dvfs counter `a\\\\b\\nc`"));
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn parser_rejects_broken_documents() {
        // Sample without TYPE.
        assert!(parse("orphan 1\n").is_err());
        // Non-cumulative buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n";
        assert!(parse(bad).unwrap_err().contains("cumulative"));
        // +Inf disagreeing with _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n";
        assert!(parse(bad).unwrap_err().contains("+Inf"));
        // Illegal name in a sample.
        assert!(parse("# TYPE ok counter\nbad-name 1\n").is_err());
    }

    #[test]
    fn empty_histogram_still_renders_complete_series() {
        let reg = MetricsRegistry::new();
        reg.histogram("empty.hist");
        let text = render(&reg);
        let parsed = parse(&text).unwrap();
        let h = &parsed.histograms["empty_hist"];
        assert_eq!(h.count, 0);
        assert_eq!(h.inf, 0);
        assert!(h.buckets.is_empty());
    }
}
