//! Online model-quality drift monitor.
//!
//! The paper sells prediction accuracy (88–98% across its figures); a
//! deployed frequency selector must notice when that stops being true —
//! a new workload mix, a driver change, a miscalibrated device. The
//! [`QualityMonitor`] keeps a rolling window of absolute percentage
//! errors (APE) over the last `window` predicted-vs-observed pairs and
//! derives:
//!
//! * `quality.<model>.mape` — rolling mean APE (the paper's headline
//!   metric), exported as a gauge;
//! * `quality.<model>.max_ape` — worst single error in the window;
//! * `quality.<model>.samples` — ground-truth pairs ever observed;
//! * `quality.<model>.alerts` — counted once per *crossing* of the
//!   alert band: when the rolling MAPE rises strictly above
//!   `warn_mape` the counter increments, a `log!(Warn, …)` line fires
//!   and a `quality.alert` trace instant lands on the timeline; the
//!   monitor then stays silent until the MAPE drops back to or below
//!   the band and crosses again. Exactly-at-band does not fire.
//!
//! The default band is 12% — the worst MAPE the paper reports for its
//! power/time models (the GV100 power band bottoms out near 88%
//! accuracy) — so an alert means "worse than anything in the paper's
//! tables".

use crate::metrics::{Counter, Gauge, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Tuning for one monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityConfig {
    /// Rolling-window length in predicted-vs-observed pairs.
    pub window: usize,
    /// Alert when rolling MAPE rises strictly above this (percent).
    pub warn_mape: f64,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            window: 256,
            warn_mape: 12.0,
        }
    }
}

/// A point-in-time view of one monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityStat {
    /// The monitored model ("power", "time", …).
    pub model: String,
    /// The configured window length.
    pub window: usize,
    /// Pairs currently in the window.
    pub filled: usize,
    /// Pairs ever observed.
    pub samples: u64,
    /// Rolling mean absolute percentage error (percent).
    pub mape: f64,
    /// Worst single APE in the window (percent).
    pub max_ape: f64,
    /// The alert band (percent).
    pub warn_mape: f64,
    /// Alert-band crossings so far.
    pub alerts: u64,
    /// Whether the rolling MAPE is currently above the band.
    pub above_band: bool,
}

struct WindowState {
    apes: Vec<f64>,
    next: usize,
    samples: u64,
    above: bool,
}

/// Rolling-window accuracy tracker for one model's predictions.
pub struct QualityMonitor {
    model: String,
    config: QualityConfig,
    state: Mutex<WindowState>,
    mape_gauge: Gauge,
    max_ape_gauge: Gauge,
    samples_counter: Counter,
    alerts_counter: Counter,
    trace_alert: u32,
    arg_model: u32,
    arg_mape: u32,
}

impl QualityMonitor {
    /// A monitor publishing into `registry` under
    /// `quality.<model>.{mape,max_ape,samples,alerts}`.
    pub fn with_registry(model: &str, config: QualityConfig, registry: &MetricsRegistry) -> Self {
        let window = config.window.max(1);
        QualityMonitor {
            model: model.to_string(),
            config: QualityConfig { window, ..config },
            state: Mutex::new(WindowState {
                apes: Vec::with_capacity(window),
                next: 0,
                samples: 0,
                above: false,
            }),
            mape_gauge: registry.gauge(&format!("quality.{model}.mape")),
            max_ape_gauge: registry.gauge(&format!("quality.{model}.max_ape")),
            samples_counter: registry.counter(&format!("quality.{model}.samples")),
            alerts_counter: registry.counter(&format!("quality.{model}.alerts")),
            trace_alert: crate::trace::intern("quality.alert"),
            arg_model: crate::trace::intern("model"),
            arg_mape: crate::trace::intern("mape"),
        }
    }

    /// A monitor publishing into the process-global registry. Prefer
    /// [`monitor`] unless you need a private instance (tests do).
    pub fn new(model: &str, config: QualityConfig) -> Self {
        Self::with_registry(model, config, crate::global())
    }

    /// The monitored model name.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Feeds one predicted-vs-observed pair. Pairs whose observed value
    /// is ~0 are skipped (APE is undefined there). Returns `true` when
    /// this observation crossed the alert band (rolling MAPE went from
    /// at-or-below to strictly above `warn_mape`).
    pub fn observe(&self, predicted: f64, observed: f64) -> bool {
        if observed.abs() < 1e-12 || !predicted.is_finite() || !observed.is_finite() {
            return false;
        }
        let ape = 100.0 * (predicted - observed).abs() / observed.abs();
        let mut state = self.state.lock();
        if state.apes.len() < self.config.window {
            state.apes.push(ape);
        } else {
            let slot = state.next;
            state.apes[slot] = ape;
        }
        state.next = (state.next + 1) % self.config.window;
        state.samples += 1;
        let mape = state.apes.iter().sum::<f64>() / state.apes.len() as f64;
        let max_ape = state.apes.iter().cloned().fold(0.0, f64::max);
        let crossed = mape > self.config.warn_mape && !state.above;
        state.above = mape > self.config.warn_mape;
        let samples = state.samples;
        drop(state);

        self.mape_gauge.set(mape);
        self.max_ape_gauge.set(max_ape);
        self.samples_counter.set(samples);
        if crossed {
            self.alerts_counter.inc();
            crate::log!(
                Warn,
                "model `{}` drifted: rolling MAPE {mape:.2}% over last {} sample(s) \
                 exceeds the {:.1}% band",
                self.model,
                samples.min(self.config.window as u64),
                self.config.warn_mape
            );
            crate::trace::instant(
                self.trace_alert,
                &[
                    (
                        self.arg_model,
                        crate::trace::ArgValue::Str(crate::trace::intern(&self.model)),
                    ),
                    (self.arg_mape, crate::trace::ArgValue::F64(mape)),
                ],
            );
        }
        crossed
    }

    /// Feeds a batch of paired `(predicted, observed)` slices (e.g. the
    /// two profiles over a frequency grid). Returns how many alerts
    /// fired.
    pub fn observe_profile(&self, predicted: &[f64], observed: &[f64]) -> u64 {
        predicted
            .iter()
            .zip(observed)
            .map(|(&p, &o)| u64::from(self.observe(p, o)))
            .sum()
    }

    /// The monitor's current rolling statistics.
    pub fn stat(&self) -> QualityStat {
        let state = self.state.lock();
        let (mape, max_ape) = if state.apes.is_empty() {
            (0.0, 0.0)
        } else {
            (
                state.apes.iter().sum::<f64>() / state.apes.len() as f64,
                state.apes.iter().cloned().fold(0.0, f64::max),
            )
        };
        QualityStat {
            model: self.model.clone(),
            window: self.config.window,
            filled: state.apes.len(),
            samples: state.samples,
            mape,
            max_ape,
            warn_mape: self.config.warn_mape,
            alerts: self.alerts_counter.get(),
            above_band: state.above,
        }
    }
}

// ---------------------------------------------------------------------------
// Global monitor registry
// ---------------------------------------------------------------------------

static MONITORS: Mutex<BTreeMap<String, Arc<QualityMonitor>>> = Mutex::new(BTreeMap::new());

/// The process-global monitor for `model`, created with the default
/// config ([`QualityConfig::default`]) on first use.
pub fn monitor(model: &str) -> Arc<QualityMonitor> {
    monitor_with(model, QualityConfig::default())
}

/// The process-global monitor for `model`, created with `config` if it
/// does not exist yet (an existing monitor keeps its original config).
pub fn monitor_with(model: &str, config: QualityConfig) -> Arc<QualityMonitor> {
    let mut monitors = MONITORS.lock();
    if let Some(m) = monitors.get(model) {
        return Arc::clone(m);
    }
    let m = Arc::new(QualityMonitor::new(model, config));
    monitors.insert(model.to_string(), Arc::clone(&m));
    m
}

/// Stats for every global monitor, model-sorted. The `dvfs monitor`
/// report renders this.
pub fn snapshot() -> Vec<QualityStat> {
    MONITORS.lock().values().map(|m| m.stat()).collect()
}

/// Drops every global monitor (their gauges stay registered). For
/// tests.
pub fn reset() {
    MONITORS.lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn private(model: &str, window: usize, warn: f64) -> (MetricsRegistry, QualityMonitor) {
        let registry = MetricsRegistry::new();
        let m = QualityMonitor::with_registry(
            model,
            QualityConfig {
                window,
                warn_mape: warn,
            },
            &registry,
        );
        // with_registry clones handles; registry stays alive alongside.
        (registry, m)
    }

    /// Hand-computed oracle: rolling MAPE over the last `window` APEs.
    fn oracle_mape(pairs: &[(f64, f64)], window: usize) -> f64 {
        let apes: Vec<f64> = pairs
            .iter()
            .map(|&(p, o)| 100.0 * (p - o).abs() / o.abs())
            .collect();
        let tail = &apes[apes.len().saturating_sub(window)..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    #[test]
    fn rolling_mape_matches_hand_computed_oracle() {
        let (_reg, m) = private("oracle", 4, 50.0);
        let pairs = [
            (110.0, 100.0), // 10%
            (90.0, 100.0),  // 10%
            (130.0, 100.0), // 30%
            (100.0, 100.0), // 0%
            (150.0, 100.0), // 50% — evicts the first 10%
            (80.0, 100.0),  // 20% — evicts the second 10%
        ];
        for (i, &(p, o)) in pairs.iter().enumerate() {
            m.observe(p, o);
            let want = oracle_mape(&pairs[..=i], 4);
            let got = m.stat().mape;
            assert!(
                (got - want).abs() < 1e-9,
                "after {} pair(s): got {got}, want {want}",
                i + 1
            );
        }
        let s = m.stat();
        assert_eq!(s.samples, 6);
        assert_eq!(s.filled, 4);
        // Window is [30, 0, 50, 20] after eviction.
        assert!((s.mape - 25.0).abs() < 1e-9);
        assert!((s.max_ape - 50.0).abs() < 1e-9);
    }

    #[test]
    fn window_eviction_forgets_old_errors() {
        let (_reg, m) = private("evict", 2, 1000.0);
        m.observe(200.0, 100.0); // 100%
        m.observe(100.0, 100.0); // 0%
        m.observe(100.0, 100.0); // 0% — the 100% error leaves the window
        let s = m.stat();
        assert_eq!(s.filled, 2);
        assert!((s.mape - 0.0).abs() < 1e-12, "mape {}", s.mape);
    }

    #[test]
    fn exactly_at_band_does_not_fire() {
        let (_reg, m) = private("edge", 8, 10.0);
        // Every pair is exactly 10% off: rolling MAPE == band, never above.
        for _ in 0..20 {
            assert!(!m.observe(110.0, 100.0));
        }
        let s = m.stat();
        assert_eq!(s.alerts, 0);
        assert!(!s.above_band);
        assert!((s.mape - 10.0).abs() < 1e-9);
    }

    #[test]
    fn alert_fires_once_per_crossing() {
        let (_reg, m) = private("crossing", 1, 10.0);
        // Window of 1: rolling MAPE is just the last APE.
        assert!(m.observe(120.0, 100.0), "first crossing fires");
        assert!(!m.observe(125.0, 100.0), "still above: no re-fire");
        assert!(!m.observe(105.0, 100.0), "back below: no fire");
        assert!(!m.observe(110.0, 100.0), "exactly at band: no fire");
        assert!(m.observe(130.0, 100.0), "second crossing fires");
        let s = m.stat();
        assert_eq!(s.alerts, 2);
        assert!(s.above_band);
    }

    #[test]
    fn near_zero_observations_are_skipped() {
        let (_reg, m) = private("zero", 4, 10.0);
        assert!(!m.observe(5.0, 0.0));
        assert!(!m.observe(f64::NAN, 100.0));
        assert!(!m.observe(5.0, f64::INFINITY));
        assert_eq!(m.stat().samples, 0);
    }

    #[test]
    fn gauges_and_counters_land_in_the_registry() {
        let (reg, m) = private("wired", 4, 5.0);
        m.observe(120.0, 100.0);
        assert!((reg.gauge("quality.wired.mape").get() - 20.0).abs() < 1e-9);
        assert!((reg.gauge("quality.wired.max_ape").get() - 20.0).abs() < 1e-9);
        assert_eq!(reg.counter("quality.wired.samples").get(), 1);
        assert_eq!(reg.counter("quality.wired.alerts").get(), 1);
    }

    #[test]
    fn observe_profile_pairs_grids() {
        let (_reg, m) = private("grid", 16, 1000.0);
        let alerts = m.observe_profile(&[110.0, 90.0, 105.0], &[100.0, 100.0, 100.0]);
        assert_eq!(alerts, 0);
        let s = m.stat();
        assert_eq!(s.samples, 3);
        assert!((s.mape - (10.0 + 10.0 + 5.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn global_monitors_are_shared_by_name() {
        let a = monitor("shared-model-test");
        let b = monitor("shared-model-test");
        a.observe(110.0, 100.0);
        assert_eq!(b.stat().samples, a.stat().samples);
        assert!(snapshot().iter().any(|s| s.model == "shared-model-test"));
    }
}
