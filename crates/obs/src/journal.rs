//! The decision journal: an append-only, segmented, CRC-checked binary
//! log fed off the hot path.
//!
//! `obs::journal` is content-agnostic — callers append opaque byte
//! records (the serve plane encodes its per-decision audit payload, see
//! `core::serve::journal`) and the writer makes them durable with a
//! fixed envelope:
//!
//! ```text
//! segment file (journal-NNNNNNNNNNNN.dvj)
//! +----------------------------- 16-byte header ------------------------------+
//! | magic "DVFSJRN1" (8) | format u32 LE (=1) | reserved u32 LE (=0)          |
//! +--------------------------------- records ---------------------------------+
//! | len u32 LE | crc32 u32 LE |            payload (len bytes)                |
//! |            |              | seq u64 LE | ts_ns u64 LE | body (len - 16)   |
//! +----------------------------------------------------------------------------
//! ```
//!
//! * **Length-prefixed + CRC32 per record** — `crc` covers the whole
//!   payload (seq, timestamp, body), so any torn or bit-flipped tail is
//!   detected on open and the file is truncated back to the longest
//!   valid prefix ([`recover_dir`], `journal.recovered_records`).
//! * **Size-based segment rotation under a disk budget** — a record
//!   that would push the active segment past `segment_bytes` rolls to a
//!   fresh file; when the directory exceeds `max_total_bytes` the
//!   oldest whole segments are deleted (`journal.evicted_segments`).
//! * **Never block a producer** — each producer owns a bounded ring; a
//!   full ring drops the record and bumps `journal.dropped`. A single
//!   dedicated writer thread drains every ring, assigns the monotone
//!   `(seq, ts_ns)` envelope in durability order, and is the only
//!   thread that touches the filesystem.
//!
//! Timestamps are wall-clock nanoseconds **assigned by the writer at
//! write time** and clamped non-decreasing, so file order, sequence
//! order, and timestamp order always agree — exactly what the
//! `validate_journal` example asserts.

use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Segment header: magic + format version + reserved word.
const MAGIC: &[u8; 8] = b"DVFSJRN1";
/// On-disk format version (bump on incompatible envelope changes).
const FORMAT: u32 = 1;
/// Header length, bytes.
const HEADER_LEN: u64 = 16;
/// Fixed envelope inside every payload: seq + ts_ns.
const ENVELOPE_LEN: usize = 16;
/// Hard ceiling on one record's payload — anything larger is rejected
/// at append time and treated as corruption on read (a bit-flipped
/// length field must not trigger a giant allocation).
const MAX_RECORD: usize = 1 << 24;
/// How long the writer naps between drain cycles. Kept short on
/// purpose: on a saturated single-core host the writer preempts the
/// serving workers for the length of one batch, so small frequent
/// batches bound the tail-latency bump far better than rare big ones.
const DRAIN_INTERVAL: Duration = Duration::from_millis(1);

/// Computes the IEEE CRC32 (reflected polynomial 0xEDB88320) of `data`.
/// Hand-rolled slice-by-8 tables so the journal stays dependency-free:
/// the writer checksums every record on the box's spare cycles, and at
/// six-figure record rates the classic byte-at-a-time loop shows up as
/// real CPU stolen from the serving workers.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    let t = TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    });
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][((lo >> 24) & 0xFF) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][((hi >> 24) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Journal tunables. [`JournalConfig::new`] gives the stock sizing
/// (4 MiB segments, 64 MiB budget, 8192-record rings).
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Rotate the active segment once it would exceed this size.
    pub segment_bytes: u64,
    /// Total on-disk budget; oldest whole segments are evicted past it.
    pub max_total_bytes: u64,
    /// Bounded per-producer ring capacity (records). A full ring drops.
    pub ring_capacity: usize,
}

impl JournalConfig {
    /// Stock configuration rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: 4 << 20,
            max_total_bytes: 64 << 20,
            ring_capacity: 8192,
        }
    }
}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Monotone sequence number assigned by the writer (starts at 1,
    /// continues across reopens).
    pub seq: u64,
    /// Wall-clock nanoseconds at write time, non-decreasing in file
    /// (and hence sequence) order.
    pub ts_ns: u64,
    /// The caller's opaque body.
    pub body: Vec<u8>,
}

/// What a directory scan found (also what recovery kept).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Segment files present after the scan.
    pub segments: usize,
    /// Valid records across all segments.
    pub records: u64,
    /// Bytes of valid data (headers + valid records).
    pub valid_bytes: u64,
    /// Bytes past the last valid record in the tail segment (torn or
    /// corrupt data; [`recover_dir`] truncates them away).
    pub torn_bytes: u64,
    /// Highest sequence number seen (0 when empty).
    pub last_seq: u64,
}

fn wall_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("journal-{index:012}.dvj"))
}

/// Lists the segment files in `dir`, sorted by index.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name
            .strip_prefix("journal-")
            .and_then(|s| s.strip_suffix(".dvj"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            segments.push((idx, entry.path()));
        }
    }
    segments.sort_by_key(|&(idx, _)| idx);
    Ok(segments)
}

/// Scans one segment: returns (valid records, byte offset of the end of
/// the valid prefix, last seq seen). An unreadable or foreign header
/// yields a zero-length valid prefix.
fn scan_segment(path: &Path, records: &mut Vec<JournalRecord>) -> io::Result<(u64, u64, u64)> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    if data.len() < HEADER_LEN as usize
        || &data[..8] != MAGIC
        || u32::from_le_bytes(data[8..12].try_into().unwrap()) != FORMAT
    {
        return Ok((0, 0, 0));
    }
    let mut off = HEADER_LEN as usize;
    let mut count = 0u64;
    let mut last_seq = 0u64;
    loop {
        if data.len() - off < 8 {
            break;
        }
        let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
        if !(ENVELOPE_LEN..=MAX_RECORD).contains(&len) || data.len() - off - 8 < len {
            break;
        }
        let payload = &data[off + 8..off + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        let seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let ts_ns = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        records.push(JournalRecord {
            seq,
            ts_ns,
            body: payload[ENVELOPE_LEN..].to_vec(),
        });
        last_seq = seq;
        count += 1;
        off += 8 + len;
    }
    Ok((count, off as u64, last_seq))
}

/// Reads every valid record in `dir`, in (segment, offset) order — which
/// the writer guarantees is also sequence and timestamp order. Each
/// segment is read up to its longest valid prefix; torn or corrupt
/// tails are skipped, never an error.
pub fn read_records(dir: &Path) -> io::Result<Vec<JournalRecord>> {
    let mut records = Vec::new();
    for (_, path) in list_segments(dir)? {
        scan_segment(&path, &mut records)?;
    }
    Ok(records)
}

/// Scans `dir` without modifying it.
pub fn scan_dir(dir: &Path) -> io::Result<ScanReport> {
    let mut report = ScanReport::default();
    let mut records = Vec::new();
    for (_, path) in list_segments(dir)? {
        records.clear();
        let (count, valid_end, last_seq) = scan_segment(&path, &mut records)?;
        let size = fs::metadata(&path)?.len();
        report.segments += 1;
        report.records += count;
        report.valid_bytes += valid_end.max(if count > 0 { HEADER_LEN } else { 0 });
        report.torn_bytes += size.saturating_sub(valid_end.max(HEADER_LEN.min(size)));
        if last_seq > 0 {
            report.last_seq = report.last_seq.max(last_seq);
        }
    }
    Ok(report)
}

/// Recovery on open: truncates every segment back to its longest valid
/// record prefix (a segment whose header is unreadable is truncated to
/// empty and re-headered), bumps `journal.recovered_records` by the
/// number of records kept, and returns the post-recovery scan.
pub fn recover_dir(dir: &Path) -> io::Result<ScanReport> {
    fs::create_dir_all(dir)?;
    let mut report = ScanReport::default();
    let mut records = Vec::new();
    for (_, path) in list_segments(dir)? {
        records.clear();
        let (count, valid_end, last_seq) = scan_segment(&path, &mut records)?;
        let size = fs::metadata(&path)?.len();
        let keep = valid_end.max(HEADER_LEN);
        if size > keep || valid_end < HEADER_LEN {
            let file = OpenOptions::new().read(true).write(true).open(&path)?;
            if valid_end < HEADER_LEN {
                // Foreign or mangled header: restart the file in place.
                file.set_len(0)?;
                let mut file = file;
                write_header(&mut file)?;
            } else {
                file.set_len(keep)?;
            }
        }
        report.segments += 1;
        report.records += count;
        report.valid_bytes += keep;
        report.torn_bytes += size.saturating_sub(keep.min(size));
        report.last_seq = report.last_seq.max(last_seq);
    }
    crate::global()
        .counter("journal.recovered_records")
        .add(report.records);
    Ok(report)
}

fn write_header<W: Write>(file: &mut W) -> io::Result<()> {
    file.write_all(MAGIC)?;
    file.write_all(&FORMAT.to_le_bytes())?;
    file.write_all(&0u32.to_le_bytes())?;
    file.flush()
}

/// Write-side buffer for the active segment. Without it every record
/// costs write(2) syscalls; on a saturated small-core host that CPU
/// comes straight out of the serving workers' budget.
const WRITE_BUF: usize = 256 * 1024;

/// One producer's bounded ring (producer pushes, writer drains). The
/// spare list recycles drained buffers back to the producer, so steady
/// state appends allocate nothing on the hot path.
struct Ring {
    state: Mutex<RingState>,
    capacity: usize,
}

struct RingState {
    queue: VecDeque<Vec<u8>>,
    spare: Vec<Vec<u8>>,
}

/// Shared writer state: the producer registry and the stop flag.
struct Inner {
    rings: Mutex<Vec<Arc<Ring>>>,
    stop: AtomicBool,
    ring_capacity: usize,
    dropped: crate::Counter,
}

/// A non-blocking handle for appending records; one per producer
/// thread. Cloning shares the same ring — give each worker its own via
/// [`JournalWriter::producer`] so producers never contend.
#[derive(Clone)]
pub struct JournalProducer {
    ring: Arc<Ring>,
    dropped: crate::Counter,
}

impl JournalProducer {
    /// Enqueues one record body. Never blocks on I/O or a full queue:
    /// returns `false` (and bumps `journal.dropped`) when the ring is
    /// full or the body exceeds the record ceiling.
    pub fn append(&self, body: &[u8]) -> bool {
        let mut buf = body.to_vec();
        self.append_buf(&mut buf)
    }

    /// Allocation-free variant for hot-path producers: swaps `body`
    /// with a recycled buffer from the ring, leaving the caller an
    /// empty `Vec` (with capacity) to encode the next record into.
    /// Same drop semantics as [`JournalProducer::append`]; on a drop
    /// the caller keeps its buffer untouched.
    pub fn append_buf(&self, body: &mut Vec<u8>) -> bool {
        if body.len() > MAX_RECORD - ENVELOPE_LEN {
            self.dropped.inc();
            return false;
        }
        let mut state = self.ring.state.lock().unwrap();
        if state.queue.len() >= self.ring.capacity {
            drop(state);
            self.dropped.inc();
            return false;
        }
        let mut slot = state.spare.pop().unwrap_or_default();
        slot.clear();
        std::mem::swap(body, &mut slot);
        state.queue.push_back(slot);
        true
    }
}

/// The durable journal: owns the writer thread and the segment files.
///
/// Open with [`JournalWriter::open`] (runs recovery), hand each
/// producer thread a [`JournalProducer`], and [`JournalWriter::stop`]
/// (or drop) to drain the rings and flush the tail segment.
pub struct JournalWriter {
    inner: Arc<Inner>,
    dir: PathBuf,
    recovered: ScanReport,
    thread: Option<JoinHandle<()>>,
}

/// The writer thread's file-side state.
struct SegmentState {
    dir: PathBuf,
    file: BufWriter<File>,
    index: u64,
    size: u64,
    /// (index, bytes) of every live segment, oldest first, including
    /// the active one (kept current so budget checks are O(1) scans of
    /// an in-memory list, not directory walks).
    sizes: Vec<(u64, u64)>,
    next_seq: u64,
    last_ts: u64,
    segment_bytes: u64,
    max_total_bytes: u64,
    /// Reused per-record assembly buffer (envelope + crc + body).
    scratch: Vec<u8>,
    appended: crate::Counter,
    bytes: crate::Counter,
    rotations: crate::Counter,
    evictions: crate::Counter,
    segments_gauge: crate::Gauge,
}

impl SegmentState {
    fn total_bytes(&self) -> u64 {
        self.sizes.iter().map(|&(_, b)| b).sum()
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.index += 1;
        let path = segment_path(&self.dir, self.index);
        let mut file = BufWriter::with_capacity(
            WRITE_BUF,
            OpenOptions::new().create(true).append(true).open(&path)?,
        );
        write_header(&mut file)?;
        self.file = file;
        self.size = HEADER_LEN;
        self.sizes.push((self.index, HEADER_LEN));
        self.rotations.inc();
        self.enforce_budget();
        Ok(())
    }

    /// Deletes oldest segments (never the active one) past the budget.
    fn enforce_budget(&mut self) {
        while self.sizes.len() > 1 && self.total_bytes() > self.max_total_bytes {
            let (idx, _) = self.sizes.remove(0);
            let _ = fs::remove_file(segment_path(&self.dir, idx));
            self.evictions.inc();
        }
    }

    fn write_record(&mut self, body: &[u8]) -> io::Result<()> {
        let payload_len = (ENVELOPE_LEN + body.len()) as u64;
        if self.size + 8 + payload_len > self.segment_bytes && self.size > HEADER_LEN {
            self.rotate()?;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        // Clamp non-decreasing so file order == timestamp order even if
        // the wall clock steps backwards.
        let ts = wall_ns().max(self.last_ts);
        self.last_ts = ts;
        let payload_bytes = ENVELOPE_LEN + body.len();
        // One contiguous assembly in the reused scratch buffer, one
        // buffered write: [len][crc][seq][ts][body].
        self.scratch.clear();
        self.scratch
            .extend_from_slice(&(payload_bytes as u32).to_le_bytes());
        self.scratch.extend_from_slice(&0u32.to_le_bytes());
        self.scratch.extend_from_slice(&seq.to_le_bytes());
        self.scratch.extend_from_slice(&ts.to_le_bytes());
        self.scratch.extend_from_slice(body);
        let crc = crc32(&self.scratch[8..]);
        self.scratch[4..8].copy_from_slice(&crc.to_le_bytes());
        self.file.write_all(&self.scratch)?;
        let written = 8 + payload_bytes as u64;
        self.size += written;
        if let Some(last) = self.sizes.last_mut() {
            last.1 = self.size;
        }
        self.appended.inc();
        self.bytes.add(written);
        Ok(())
    }
}

impl JournalWriter {
    /// Runs recovery on `config.dir`, opens (or creates) the tail
    /// segment, and spawns the writer thread.
    pub fn open(config: JournalConfig) -> io::Result<JournalWriter> {
        let recovered = recover_dir(&config.dir)?;
        let segments = list_segments(&config.dir)?;
        let (index, path) = match segments.last() {
            Some((idx, path)) => (*idx, path.clone()),
            None => (1, segment_path(&config.dir, 1)),
        };
        let raw = OpenOptions::new().create(true).append(true).open(&path)?;
        let size = raw.metadata()?.len();
        let mut file = BufWriter::with_capacity(WRITE_BUF, raw);
        if size < HEADER_LEN {
            write_header(&mut file)?;
        }
        let mut sizes: Vec<(u64, u64)> = Vec::new();
        for (idx, p) in &segments {
            sizes.push((*idx, fs::metadata(p)?.len()));
        }
        if sizes.is_empty() {
            sizes.push((index, HEADER_LEN));
        }
        let reg = crate::global();
        let mut state = SegmentState {
            dir: config.dir.clone(),
            file,
            index,
            size: size.max(HEADER_LEN),
            sizes,
            next_seq: recovered.last_seq + 1,
            last_ts: 0,
            segment_bytes: config.segment_bytes.max(HEADER_LEN + 64),
            max_total_bytes: config.max_total_bytes.max(config.segment_bytes),
            scratch: Vec::with_capacity(1024),
            appended: reg.counter("journal.appended"),
            bytes: reg.counter("journal.bytes"),
            rotations: reg.counter("journal.rotations"),
            evictions: reg.counter("journal.evicted_segments"),
            segments_gauge: reg.gauge("journal.segments"),
        };
        let inner = Arc::new(Inner {
            rings: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            ring_capacity: config.ring_capacity.max(1),
            dropped: reg.counter("journal.dropped"),
        });
        let thread_inner = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name("obs-journal".to_string())
            .spawn(move || writer_loop(&thread_inner, &mut state))
            .expect("spawn journal writer");
        Ok(JournalWriter {
            inner,
            dir: config.dir,
            recovered,
            thread: Some(thread),
        })
    }

    /// Registers a new producer ring and returns its handle.
    pub fn producer(&self) -> JournalProducer {
        let ring = Arc::new(Ring {
            state: Mutex::new(RingState {
                queue: VecDeque::new(),
                spare: Vec::new(),
            }),
            capacity: self.inner.ring_capacity,
        });
        self.inner.rings.lock().unwrap().push(Arc::clone(&ring));
        JournalProducer {
            ring,
            dropped: self.inner.dropped.clone(),
        }
    }

    /// What recovery found on open.
    pub fn recovered(&self) -> &ScanReport {
        &self.recovered
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Stops the writer: drains every ring one final time, flushes the
    /// tail segment, and joins the thread. Records appended after this
    /// call are lost (rings are no longer drained).
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// The writer thread: drain every ring, write, flush, nap; on stop,
/// one final drain so everything enqueued before `stop()` is durable.
fn writer_loop(inner: &Arc<Inner>, state: &mut SegmentState) {
    /// Drain cycles between kernel flushes (the process-crash
    /// durability window is roughly this many milliseconds).
    const FLUSH_EVERY: u32 = 8;
    let mut batch: Vec<Vec<u8>> = Vec::new();
    let mut unflushed = false;
    let mut cycles_since_flush = 0u32;
    loop {
        let stopping = inner.stop.load(Ordering::Acquire);
        // Producers never take the registry lock (only `producer()`
        // does), so holding it across the drain is uncontended.
        let rings = inner.rings.lock().unwrap();
        let mut wrote = false;
        for ring in rings.iter() {
            // drain() keeps the deque's capacity so steady-state appends
            // never reallocate (mem::take would reset it every cycle).
            batch.extend(ring.state.lock().unwrap().queue.drain(..));
            if batch.is_empty() {
                continue;
            }
            wrote = true;
            for body in &batch {
                if let Err(e) = state.write_record(body) {
                    crate::log!(Warn, "journal: write failed: {e}");
                }
            }
            // Hand the drained buffers back for the producer to reuse,
            // bounded by the ring capacity so a one-off burst doesn't
            // pin memory forever.
            let mut rs = ring.state.lock().unwrap();
            for mut body in batch.drain(..) {
                if rs.spare.len() < ring.capacity {
                    body.clear();
                    rs.spare.push(body);
                }
            }
        }
        drop(rings);
        if wrote {
            state.segments_gauge.set(state.sizes.len() as f64);
            unflushed = true;
        }
        // Records sit in the 256 KiB buffer between flushes; pushing
        // them to the kernel every few cycles (instead of every cycle)
        // trades a ~FLUSH_EVERY-ms process-crash window for a thousand
        // fewer write(2) calls per second on the serving cores.
        cycles_since_flush += 1;
        if unflushed && (stopping || cycles_since_flush >= FLUSH_EVERY) {
            if let Err(e) = state.file.flush() {
                crate::log!(Warn, "journal: flush failed: {e}");
            }
            unflushed = false;
        }
        if cycles_since_flush >= FLUSH_EVERY {
            cycles_since_flush = 0;
        }
        if stopping {
            return;
        }
        std::thread::sleep(DRAIN_INTERVAL);
    }
}

/// Appends `bodies` synchronously (no writer thread) — test and tooling
/// helper for building journals deterministically.
pub fn append_sync(config: &JournalConfig, bodies: &[Vec<u8>]) -> io::Result<()> {
    let writer = JournalWriter::open(config.clone())?;
    let producer = writer.producer();
    for body in bodies {
        assert!(producer.append(body), "append_sync ring overflow");
    }
    writer.stop();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Seek, SeekFrom};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dvfs-journal-{tag}-{}-{}",
            std::process::id(),
            wall_ns()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_bodies_order_and_monotone_envelope() {
        let dir = temp_dir("roundtrip");
        let bodies: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_le_bytes().to_vec()).collect();
        append_sync(&JournalConfig::new(&dir), &bodies).unwrap();
        let records = read_records(&dir).unwrap();
        assert_eq!(records.len(), bodies.len());
        for (i, record) in records.iter().enumerate() {
            assert_eq!(record.body, bodies[i]);
            assert_eq!(record.seq, i as u64 + 1);
        }
        assert!(records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_budget_evict_oldest_segments() {
        let dir = temp_dir("budget");
        let config = JournalConfig {
            dir: dir.clone(),
            segment_bytes: 256,
            max_total_bytes: 1024,
            ring_capacity: 4096,
        };
        let bodies: Vec<Vec<u8>> = (0..200u8).map(|i| vec![i; 40]).collect();
        append_sync(&config, &bodies).unwrap();
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 1, "rotation produced segments");
        let total: u64 = segments
            .iter()
            .map(|(_, p)| fs::metadata(p).unwrap().len())
            .sum();
        assert!(total <= 1024 + 256, "budget bounds disk use: {total}");
        // Eviction dropped the oldest records; the survivors are a
        // contiguous suffix in both sequence and body.
        let records = read_records(&dir).unwrap();
        assert!(!records.is_empty());
        assert!(records.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        assert_eq!(records.last().unwrap().seq, 200);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_sequence_numbers() {
        let dir = temp_dir("reopen");
        append_sync(&JournalConfig::new(&dir), &[b"a".to_vec(), b"b".to_vec()]).unwrap();
        append_sync(&JournalConfig::new(&dir), &[b"c".to_vec()]).unwrap();
        let records = read_records(&dir).unwrap();
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(records[2].body, b"c");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_recovery() {
        let dir = temp_dir("torn");
        let bodies: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 32]).collect();
        append_sync(&JournalConfig::new(&dir), &bodies).unwrap();
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        // Tear the last record in half.
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 20)
            .unwrap();
        let report = recover_dir(&dir).unwrap();
        assert_eq!(report.records, 9);
        assert!(report.torn_bytes > 0);
        assert_eq!(read_records(&dir).unwrap().len(), 9);
        // Appends continue cleanly after the truncation.
        append_sync(&JournalConfig::new(&dir), &[b"post".to_vec()]).unwrap();
        let records = read_records(&dir).unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(records.last().unwrap().seq, 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_invalidates_the_suffix_only() {
        let dir = temp_dir("flip");
        let bodies: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 24]).collect();
        append_sync(&JournalConfig::new(&dir), &bodies).unwrap();
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut data = Vec::new();
        File::open(&path).unwrap().read_to_end(&mut data).unwrap();
        // Flip one bit inside the 5th record's payload.
        let record_len = 8 + ENVELOPE_LEN + 24;
        let offset = HEADER_LEN as usize + 4 * record_len + 12;
        let mut file = OpenOptions::new().write(true).open(&path).unwrap();
        file.seek(SeekFrom::Start(offset as u64)).unwrap();
        file.write_all(&[data[offset] ^ 0x40]).unwrap();
        drop(file);
        let report = recover_dir(&dir).unwrap();
        assert_eq!(report.records, 4, "prefix before the flip survives");
        assert_eq!(read_records(&dir).unwrap().len(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn full_ring_drops_instead_of_blocking() {
        let dir = temp_dir("drop");
        let config = JournalConfig {
            ring_capacity: 4,
            ..JournalConfig::new(&dir)
        };
        let writer = JournalWriter::open(config).unwrap();
        let producer = writer.producer();
        // Stop the writer first so nothing drains the ring, then
        // overfill it: the 5th append must drop, not block.
        writer.stop();
        let mut accepted = 0;
        for _ in 0..8 {
            if producer.append(b"x") {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4);
        fs::remove_dir_all(&dir).unwrap();
    }
}
