//! Property tests for the Prometheus text exposition: whatever a
//! registry holds, `prom::render` must produce a document that the
//! strict parser accepts, whose counter/gauge samples equal the
//! registry values, and whose histogram bucket series are cumulative
//! and consistent with the histogram oracle (`count`, `sum`, bucket
//! boundaries).

use obs::hist::bucket_bounds;
use obs::{prom, MetricsRegistry};
use proptest::prelude::*;

/// Separators to splice into generated metric names — the index prefix
/// keeps sanitized names unique, the separator exercises sanitization
/// (dots are the house style; the rest are hostile).
const SEPARATORS: [&str; 6] = [".", "..", "-", " ", "/", "🦀"];

fn metric_name(index: usize, salt: usize) -> String {
    format!("m{index}{}v", SEPARATORS[(index + salt) % SEPARATORS.len()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counters and gauges survive the render→parse round trip exactly
    /// (gauges bit-exact through `{v}` float formatting, which is
    /// shortest-round-trip in Rust).
    #[test]
    fn scrape_output_parses_back_to_registry_values(
        counters in proptest::collection::vec(0u64..u64::MAX / 2, 0..8),
        gauges in proptest::collection::vec(-1e12f64..1e12, 0..8),
        salt in 0usize..SEPARATORS.len(),
    ) {
        let reg = MetricsRegistry::new();
        for (i, v) in counters.iter().enumerate() {
            reg.counter(&metric_name(i, salt)).set(*v);
        }
        for (i, v) in gauges.iter().enumerate() {
            // Offset the index space so gauges never collide with
            // counters post-sanitization.
            reg.gauge(&metric_name(i + 100, salt)).set(*v);
        }
        let text = prom::render(&reg);
        let parsed = prom::parse(&text)
            .unwrap_or_else(|e| panic!("render output rejected: {e}\n{text}"));
        prop_assert_eq!(parsed.counters.len(), counters.len());
        prop_assert_eq!(parsed.gauges.len(), gauges.len());
        for (i, v) in counters.iter().enumerate() {
            let s = prom::sanitize_name(&metric_name(i, salt));
            prop_assert_eq!(parsed.counters.get(&s), Some(v), "counter {}", s);
        }
        for (i, v) in gauges.iter().enumerate() {
            let s = prom::sanitize_name(&metric_name(i + 100, salt));
            prop_assert_eq!(parsed.gauges.get(&s).copied(), Some(*v), "gauge {}", s);
        }
    }

    /// Histogram exposition invariants against the hist oracle: buckets
    /// strictly increasing in `le` with non-decreasing cumulative
    /// counts (the parser enforces both), final cumulative == `+Inf` ==
    /// `_count` == records, `_sum` equal to the sum of recorded values,
    /// and the cumulative count at each value's own bucket edge equal
    /// to an exact oracle count.
    #[test]
    fn histogram_buckets_are_cumulative_and_match_the_oracle(
        values in proptest::collection::vec(0u64..5_000_000, 1..300),
    ) {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t.lat_ns");
        for &v in &values {
            h.record(v);
        }
        let text = prom::render(&reg);
        let parsed = prom::parse(&text).unwrap_or_else(|e| panic!("rejected: {e}"));
        let hist = &parsed.histograms["t_lat_ns"];
        prop_assert_eq!(hist.count, values.len() as u64);
        prop_assert_eq!(hist.inf, values.len() as u64);
        prop_assert_eq!(hist.sum, values.iter().sum::<u64>() as f64);
        let last = hist.buckets.last().expect("non-empty histogram has buckets");
        prop_assert_eq!(last.1, values.len() as u64, "last bucket must be total");
        for &v in &values {
            let (lo, width) = bucket_bounds(v);
            let edge = (lo + width - 1) as f64;
            let at_edge = hist
                .buckets
                .iter()
                .find(|&&(le, _)| le == edge)
                .map(|&(_, c)| c);
            // Exact cumulative oracle: how many recorded values fall in
            // buckets whose inclusive upper edge is <= this value's.
            let oracle = values
                .iter()
                .filter(|&&x| {
                    let (xlo, xw) = bucket_bounds(x);
                    xlo + xw <= lo + width
                })
                .count() as u64;
            prop_assert_eq!(at_edge, Some(oracle), "cumulative at le {} for value {}", edge, v);
        }
    }

    /// Sanitized names are always legal exposition names, and
    /// sanitization is idempotent — for arbitrary printable-ASCII
    /// input.
    #[test]
    fn sanitize_always_produces_legal_names(
        bytes in proptest::collection::vec(0x20u8..0x7f, 0..24),
    ) {
        let name = String::from_utf8(bytes).unwrap();
        let s = prom::sanitize_name(&name);
        let doc = format!("# TYPE {s} counter\n{s} 1\n");
        let parsed = prom::parse(&doc);
        prop_assert!(
            parsed.is_ok(),
            "sanitized `{}` -> `{}` rejected: {:?}",
            name,
            s,
            parsed.err()
        );
        prop_assert_eq!(prom::sanitize_name(&s), s.clone(), "sanitize must be idempotent");
    }
}
