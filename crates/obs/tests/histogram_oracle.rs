//! Property test: histogram percentiles agree with a sorted-vec oracle
//! to within one bucket width — the same parity guarantee `dvfs batch`
//! relies on after replacing its private sort-based percentile math with
//! the shared histogram type.

use obs::hist::{bucket_bounds, Histogram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any latency-shaped sample set and any of the reported
    /// quantiles, the histogram estimate lands in the same bucket as the
    /// exact sorted-vector answer (identical rank convention), i.e.
    /// within one bucket width of it.
    #[test]
    fn percentiles_match_sorted_vec_oracle(
        mut values in proptest::collection::vec(1u64..2_000_000, 1..400),
        q in 0.0..1.0f64,
    ) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        for q in [q, 0.5, 0.9, 0.99] {
            let oracle = values[((values.len() - 1) as f64 * q) as usize];
            let est = hist.percentile(q);
            let (lo, width) = bucket_bounds(oracle);
            prop_assert!(
                est.abs_diff(oracle) < width,
                "q={}: estimate {} vs oracle {} (bucket [{}, {}))",
                q, est, oracle, lo, lo + width
            );
        }
    }

    /// The exact extremes are never quantized away.
    #[test]
    fn min_max_are_exact(
        values in proptest::collection::vec(0u64..10_000_000_000, 1..200),
    ) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        prop_assert_eq!(hist.max(), *values.iter().max().unwrap());
        prop_assert_eq!(hist.min(), *values.iter().min().unwrap());
        prop_assert_eq!(hist.percentile(1.0), hist.max());
        prop_assert_eq!(hist.count(), values.len() as u64);
    }

    /// Degenerate populations: with one or two samples every reachable
    /// rank is an exact extreme, so the histogram must agree with the
    /// sorted-vector oracle *exactly* — no bucket quantization allowed.
    /// (Regression: p99 of a single sample in a wide top bucket used to
    /// be at the mercy of bucket edges; both extremes now short-circuit
    /// to the tracked min/max.)
    #[test]
    fn one_and_two_sample_percentiles_are_exact(
        mut values in proptest::collection::vec(1u64..u64::MAX / 2, 1..3),
        q in 0.0..1.0f64,
    ) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        for q in [0.0, q, 0.5, 0.99, 1.0] {
            let oracle = values[((values.len() - 1) as f64 * q) as usize];
            prop_assert_eq!(
                hist.percentile(q),
                oracle,
                "q={}: {} sample(s) must be exact",
                q,
                values.len()
            );
        }
    }

    /// Percentile is monotone in the quantile.
    #[test]
    fn percentile_is_monotone_in_q(
        values in proptest::collection::vec(1u64..1_000_000, 1..200),
        q1 in 0.0..1.0f64,
        q2 in 0.0..1.0f64,
    ) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(hist.percentile(lo) <= hist.percentile(hi));
    }
}
