//! Flight-recorder ring-buffer guarantees, property-tested:
//!
//! * wraparound keeps exactly the newest `capacity` events;
//! * per-thread sequence numbers strictly increase;
//! * a drain of several rings is timestamp-mergeable (sorting by
//!   `(ts, tid, seq)` never has to reorder same-thread events);
//! * concurrent writers on their own rings never produce torn or
//!   duplicated events.

use obs::trace::{self, ArgValue, EventKind, RingBuffer, TraceEvent};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After writing `n` events into a ring asked for `cap` slots (the
    /// ring rounds up to a power of two), exactly the last
    /// `min(n, capacity)` survive, in sequence order, payloads intact.
    #[test]
    fn wraparound_keeps_the_newest_events(
        cap in 2usize..64,
        n in 0u64..300,
    ) {
        let name = trace::intern("prop-wrap");
        let arg = trace::intern("i");
        let ring = RingBuffer::new(9, cap);
        prop_assert!(ring.capacity() >= cap);
        prop_assert!(ring.capacity().is_power_of_two());
        for i in 0..n {
            // Payload derived from the sequence number, so retained
            // events can be checked field-by-field.
            ring.record(
                1000 + i,
                EventKind::Instant,
                name,
                i * 3,
                &[(arg, ArgValue::U64(i))],
            );
        }
        prop_assert_eq!(ring.written(), n);
        let mut events = ring.read_all();
        events.sort_by_key(|e| e.seq);
        let expect_first = n.saturating_sub(ring.capacity() as u64);
        prop_assert_eq!(events.len() as u64, n - expect_first);
        for (k, e) in events.iter().enumerate() {
            let seq = expect_first + k as u64;
            prop_assert_eq!(e.seq, seq);
            prop_assert_eq!(e.ts_ns, 1000 + seq);
            prop_assert_eq!(e.value, seq * 3);
            prop_assert_eq!(e.args[0], Some((arg, ArgValue::U64(seq))));
        }
    }

    /// Sequence numbers strictly increase per ring, and merging several
    /// rings' drains sorted by `(ts, tid, seq)` keeps every ring's own
    /// events in both sequence order and timestamp order — i.e. the
    /// global sort never has to break a thread's internal order.
    #[test]
    fn drain_order_is_timestamp_mergeable(
        counts in proptest::collection::vec(1u64..40, 1..4),
    ) {
        let name = trace::intern("prop-merge");
        let rings: Vec<RingBuffer> = counts
            .iter()
            .enumerate()
            .map(|(t, _)| RingBuffer::new(100 + t as u64, 64))
            .collect();
        // Interleave writes round-robin with a shared monotone clock,
        // like real threads timestamping from one epoch.
        let mut clock = 0u64;
        let mut remaining: Vec<u64> = counts.clone();
        loop {
            let mut wrote = false;
            for (ring, left) in rings.iter().zip(remaining.iter_mut()) {
                if *left > 0 {
                    clock += 1;
                    ring.record(clock, EventKind::Instant, name, 0, &[]);
                    *left -= 1;
                    wrote = true;
                }
            }
            if !wrote {
                break;
            }
        }
        let mut merged: Vec<TraceEvent> =
            rings.iter().flat_map(|r| r.read_all()).collect();
        merged.sort_by_key(|e| (e.ts_ns, e.tid, e.seq));
        for (t, ring) in rings.iter().enumerate() {
            let mine: Vec<&TraceEvent> =
                merged.iter().filter(|e| e.tid == ring.tid()).collect();
            prop_assert_eq!(mine.len() as u64, counts[t]);
            for pair in mine.windows(2) {
                prop_assert!(pair[0].seq < pair[1].seq, "seqs must strictly increase");
                prop_assert!(pair[0].ts_ns <= pair[1].ts_ns, "ts must be monotone per tid");
            }
        }
    }
}

/// Concurrent writers, each hammering its own ring through the global
/// recorder, while the main thread drains mid-flight: no event is torn
/// (payload fields always agree with the writer's invariant) and no
/// event is duplicated (per-tid sequence numbers are unique).
#[test]
fn concurrent_writers_are_never_torn_or_duplicated() {
    let _guard = test_lock();
    trace::reset();
    trace::set_enabled(true);
    let name = trace::intern("conc-writers");
    let arg = trace::intern("check");
    const WRITERS: usize = 4;
    const EVENTS: u64 = 5_000;

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            scope.spawn(move || {
                for i in 0..EVENTS {
                    // Invariant a torn read would break: value and arg
                    // are both derived from (writer, i).
                    let v = (w as u64) << 32 | i;
                    trace::record(
                        trace::now_ns(),
                        EventKind::Instant,
                        name,
                        v,
                        &[(arg, ArgValue::U64(v.wrapping_mul(0x9e37_79b9)))],
                    );
                }
            });
        }
        // Drain concurrently with the writers: must never observe a
        // torn event, only skip in-flight slots.
        for _ in 0..50 {
            let (events, _) = trace::drain();
            for e in events.iter().filter(|e| e.name == name) {
                assert_eq!(
                    e.args[0],
                    Some((arg, ArgValue::U64(e.value.wrapping_mul(0x9e37_79b9)))),
                    "torn event: value/arg invariant broken"
                );
            }
        }
    });
    trace::set_enabled(false);

    let (events, stats) = trace::drain();
    let mine: Vec<&TraceEvent> = events.iter().filter(|e| e.name == name).collect();
    assert!(!mine.is_empty());
    // No duplicates: (tid, seq) identifies an event exactly once.
    let mut keys: Vec<(u64, u64)> = mine.iter().map(|e| (e.tid, e.seq)).collect();
    keys.sort_unstable();
    let before = keys.len();
    keys.dedup();
    assert_eq!(keys.len(), before, "duplicated events in drain");
    // Consistency survives in the final drain too.
    for e in &mine {
        assert_eq!(
            e.args[0],
            Some((arg, ArgValue::U64(e.value.wrapping_mul(0x9e37_79b9))))
        );
    }
    // Retention is bounded by what was written; loss is accounted for.
    let total_written = WRITERS as u64 * EVENTS;
    assert!(
        stats.retained <= total_written,
        "retained {} > written {total_written}",
        stats.retained
    );
}

/// Serializes tests that toggle the global recorder against each other
/// (the unit tests inside `obs` use their own crate-internal lock; this
/// integration test binary runs in a separate process, so a local lock
/// suffices).
fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap()
}
