//! Property tests for journal crash recovery: an arbitrarily truncated
//! or bit-flipped tail segment must recover to the longest valid prefix
//! of records on reopen — never panic, never resurrect a corrupt
//! record, and keep appending correctly afterwards.

use obs::journal::{append_sync, read_records, recover_dir, scan_dir, JournalConfig};
use proptest::prelude::*;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-size per-segment header (magic + format + reserved) that
/// recovery rewrites when the file head itself is damaged.
const HEADER_LEN: u64 = 16;
/// Per-record envelope: `[len u32][crc u32][seq u64][ts u64]`.
const ENVELOPE_LEN: u64 = 8 + 16;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-unique scratch directory (proptest runs many cases; each
/// needs a fresh journal).
fn scratch_dir() -> PathBuf {
    let id = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("obs-journal-prop-{}-{id}", std::process::id()))
}

/// Writes `bodies` through the real writer, then returns the single
/// segment's path (the config's segment budget is large enough that
/// rotation never splits the records; corruption targets one file).
fn write_journal(dir: &PathBuf, bodies: &[Vec<u8>]) -> PathBuf {
    let config = JournalConfig::new(dir.clone());
    append_sync(&config, bodies).expect("journal write");
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read journal dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "dvj"))
        .collect();
    segments.sort();
    assert_eq!(segments.len(), 1, "expected one segment");
    segments.pop().unwrap()
}

/// How many of the `lens`-sized records survive in full when the
/// segment is cut to `keep` bytes: records are contiguous from the
/// header, so it is the longest prefix whose envelopes fit.
fn expected_prefix(lens: &[usize], keep: u64) -> u64 {
    let mut offset = HEADER_LEN;
    let mut intact = 0u64;
    for &len in lens {
        offset += ENVELOPE_LEN + len as u64;
        if offset > keep {
            break;
        }
        intact += 1;
    }
    intact
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the tail segment at ANY byte offset recovers exactly
    /// the records that still fit in full, and the journal stays
    /// appendable with continuous sequence numbers.
    #[test]
    fn truncated_tail_recovers_longest_prefix(
        lens in proptest::collection::vec(1usize..160, 1..12),
        cut_fraction in 0.0f64..1.0,
    ) {
        let dir = scratch_dir();
        let bodies: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| vec![i as u8; len])
            .collect();
        let segment = write_journal(&dir, &bodies);
        let full = std::fs::metadata(&segment).expect("segment metadata").len();
        let keep = (full as f64 * cut_fraction) as u64;
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .expect("open segment");
        file.set_len(keep).expect("truncate segment");
        drop(file);

        let report = recover_dir(&dir).expect("recovery must not fail");
        let expected = expected_prefix(&lens, keep);
        prop_assert_eq!(report.records, expected);

        let records = read_records(&dir).expect("read recovered journal");
        prop_assert_eq!(records.len() as u64, expected);
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64 + 1);
            prop_assert_eq!(&r.body, &bodies[i]);
        }

        // The recovered journal accepts appends and numbers them after
        // the surviving prefix.
        append_sync(&JournalConfig::new(dir.clone()), &[b"after".to_vec()])
            .expect("append after recovery");
        let records = read_records(&dir).expect("read appended journal");
        prop_assert_eq!(records.len() as u64, expected + 1);
        prop_assert_eq!(records.last().unwrap().seq, expected + 1);

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Flipping ANY bit in the segment makes recovery keep a valid
    /// prefix: the flipped record (or anything envelope-damaged before
    /// it) is gone, everything recovered still carries intact bodies,
    /// and the scan after recovery sees zero torn bytes.
    #[test]
    fn bit_flip_recovers_valid_prefix(
        lens in proptest::collection::vec(1usize..160, 1..12),
        flip_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = scratch_dir();
        let bodies: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| vec![i as u8; len])
            .collect();
        let segment = write_journal(&dir, &bodies);
        let full = std::fs::metadata(&segment).expect("segment metadata").len();
        let offset = ((full - 1) as f64 * flip_fraction) as u64;
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&segment)
            .expect("open segment");
        let mut byte = [0u8; 1];
        file.seek(SeekFrom::Start(offset)).expect("seek");
        file.read_exact(&mut byte).expect("read byte");
        byte[0] ^= 1 << bit;
        file.seek(SeekFrom::Start(offset)).expect("seek back");
        file.write_all(&byte).expect("write flipped byte");
        drop(file);

        let report = recover_dir(&dir).expect("recovery must not fail");
        prop_assert!(report.records <= lens.len() as u64);

        let records = read_records(&dir).expect("read recovered journal");
        prop_assert_eq!(records.len() as u64, report.records);
        // Whatever survived is a prefix with intact bodies and
        // contiguous sequence numbers — the flip never corrupts a
        // record that recovery kept.
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64 + 1);
            prop_assert_eq!(&r.body, &bodies[i]);
        }
        // Recovery truncated the damage away: a rescan is clean.
        let rescan = scan_dir(&dir).expect("rescan");
        prop_assert_eq!(rescan.torn_bytes, 0);
        prop_assert_eq!(rescan.records, report.records);

        std::fs::remove_dir_all(&dir).ok();
    }
}
