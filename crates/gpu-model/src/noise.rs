//! Deterministic measurement-noise model.
//!
//! Real DCGM counters jitter run to run; the paper's 88–98 % model
//! accuracies are bounded by that jitter. This module provides
//! multiplicative Gaussian noise with per-channel sigmas, seeded
//! deterministically from `(workload, frequency, run index)` so every
//! experiment is exactly reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-channel relative noise levels (standard deviations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Relative sigma on power readings.
    pub power_sigma: f64,
    /// Relative sigma on execution-time readings.
    pub time_sigma: f64,
    /// Relative sigma on activity counters (fp/dram/sm).
    pub activity_sigma: f64,
    /// Relative sigma on PCIe byte counters (bursty, hence large).
    pub pcie_sigma: f64,
}

impl NoiseModel {
    /// Calibrated default: keeps DNN accuracy in the paper's 88–98 % band.
    pub fn default_bench() -> Self {
        Self {
            power_sigma: 0.02,
            time_sigma: 0.015,
            activity_sigma: 0.015,
            pcie_sigma: 0.30,
        }
    }

    /// No noise at all (for model-calibration tests).
    pub fn none() -> Self {
        Self {
            power_sigma: 0.0,
            time_sigma: 0.0,
            activity_sigma: 0.0,
            pcie_sigma: 0.0,
        }
    }

    /// Multiplicative factor `1 + sigma * z` with `z ~ N(0,1)` truncated to
    /// ±3 so a single unlucky draw cannot produce a negative reading.
    pub fn factor(sigma: f64, rng: &mut impl Rng) -> f64 {
        let z = gaussian(rng).clamp(-3.0, 3.0);
        1.0 + sigma * z
    }
}

/// Standard-normal draw via Box–Muller.
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Deterministic RNG for one measurement, derived from the workload name,
/// the frequency, the run index, and a caller salt (e.g. the device arch).
pub fn measurement_rng(workload: &str, mhz: f64, run: u32, salt: u64) -> StdRng {
    // FNV-1a over the identifying tuple.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for b in workload.as_bytes() {
        mix(*b);
    }
    for b in (mhz as u64).to_le_bytes() {
        mix(b);
    }
    for b in run.to_le_bytes() {
        mix(b);
    }
    for b in salt.to_le_bytes() {
        mix(b);
    }
    StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_stream() {
        let mut a = measurement_rng("dgemm", 1410.0, 0, 1);
        let mut b = measurement_rng("dgemm", 1410.0, 0, 1);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn different_keys_different_streams() {
        let mut a = measurement_rng("dgemm", 1410.0, 0, 1);
        let mut b = measurement_rng("dgemm", 1395.0, 0, 1);
        let mut c = measurement_rng("dgemm", 1410.0, 1, 1);
        let mut d = measurement_rng("stream", 1410.0, 0, 1);
        let va = a.random::<u64>();
        assert_ne!(va, b.random::<u64>());
        assert_ne!(va, c.random::<u64>());
        assert_ne!(va, d.random::<u64>());
    }

    #[test]
    fn factor_is_near_one() {
        let mut rng = measurement_rng("x", 0.0, 0, 0);
        for _ in 0..1000 {
            let f = NoiseModel::factor(0.02, &mut rng);
            assert!((0.94..=1.06).contains(&f), "factor {f}");
        }
    }

    #[test]
    fn zero_sigma_is_exactly_one() {
        let mut rng = measurement_rng("x", 0.0, 0, 0);
        assert_eq!(NoiseModel::factor(0.0, &mut rng), 1.0);
    }

    #[test]
    fn noise_mean_is_unbiased() {
        let mut rng = measurement_rng("bias", 1.0, 0, 0);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| NoiseModel::factor(0.05, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.002, "mean {mean}");
    }

    #[test]
    fn default_bench_sigmas_are_small() {
        let nm = NoiseModel::default_bench();
        assert!(nm.power_sigma <= 0.05);
        assert!(nm.time_sigma <= 0.05);
        assert!(nm.pcie_sigma >= 0.1); // pcie is deliberately noisy
    }
}
