//! The analytical power and execution-time models.
//!
//! # Time (roofline)
//!
//! `T(f) = max(flops / C(f), bytes / B(f)) + overhead`
//!
//! where compute capability `C(f)` scales linearly with the core clock and
//! bandwidth `B(f)` follows a soft-saturating curve that flattens around
//! `bw_sat_mhz` (~900 MHz on GA100) — the paper's Figure 1 (f, h).
//!
//! # Power
//!
//! `P(f) = P_idle + (TDP - P_idle) * u * (f/f_max) * V(f)^2`
//!
//! with utilization blend `u = w_fp * fp_active + w_dram * dram_active` and
//! a convex voltage curve `V(f)`. Calibrated so a compute-bound workload
//! draws the TDP at f_max, a memory-bound one about half of it, and the
//! energy minima of DGEMM/STREAM land near 1005–1080 MHz (Figure 1 a, c,
//! e, g).
//!
//! # Derived activities
//!
//! `fp_active(f)` is achieved FLOP rate over the FLOP rate *available at
//! that clock*; `dram_active(f)` is achieved traffic over peak bandwidth
//! (memory clock is DVFS-independent). Compute-bound workloads therefore
//! show a frequency-invariant `fp_active` and a mildly varying
//! `dram_active`, which is exactly the invariance the paper reports in
//! Figures 4 and 5.

use crate::arch::DeviceSpec;
use crate::signature::WorkloadSignature;

/// Sharpness of the bandwidth-saturation knee (higher = sharper).
const BW_KNEE_EXP: f64 = 6.0;

/// Normalized supply voltage at core frequency `mhz` (1.0 at `max_core_mhz`).
pub fn voltage(spec: &DeviceSpec, mhz: f64) -> f64 {
    let x = ((mhz - spec.min_core_mhz) / (spec.max_core_mhz - spec.min_core_mhz)).clamp(0.0, 1.0);
    spec.volt_min + (1.0 - spec.volt_min) * x.powf(spec.volt_exp)
}

/// Raw soft-saturation factor `r / (1 + r^k)^(1/k)` with `r = f / f_sat`.
fn sat_raw(spec: &DeviceSpec, mhz: f64) -> f64 {
    let r = mhz / spec.bw_sat_mhz;
    r / (1.0 + r.powf(BW_KNEE_EXP)).powf(1.0 / BW_KNEE_EXP)
}

/// Bandwidth availability factor, normalized to 1.0 at `max_core_mhz`.
pub fn bw_factor(spec: &DeviceSpec, mhz: f64) -> f64 {
    sat_raw(spec, mhz) / sat_raw(spec, spec.max_core_mhz)
}

/// FLOP rate available to `sig` at clock `mhz`, in FLOP/s.
pub fn avail_flops_per_s(spec: &DeviceSpec, sig: &WorkloadSignature, mhz: f64) -> f64 {
    spec.peak_gflops_for_mix(sig.fp64_ratio) * 1e9 * sig.kappa_compute * (mhz / spec.max_core_mhz)
}

/// DRAM bandwidth available to `sig` at clock `mhz`, in byte/s.
pub fn avail_bytes_per_s(spec: &DeviceSpec, sig: &WorkloadSignature, mhz: f64) -> f64 {
    spec.peak_bw_gbs * 1e9 * sig.kappa_memory * bw_factor(spec, mhz)
}

/// Execution time of one run of `sig` at clock `mhz`, in seconds.
pub fn exec_time(spec: &DeviceSpec, sig: &WorkloadSignature, mhz: f64) -> f64 {
    let t_compute = if sig.flops > 0.0 {
        sig.flops / avail_flops_per_s(spec, sig, mhz)
    } else {
        0.0
    };
    let t_memory = if sig.bytes > 0.0 {
        sig.bytes / avail_bytes_per_s(spec, sig, mhz)
    } else {
        0.0
    };
    t_compute.max(t_memory) + sig.overhead_s
}

/// Noise-free activity pair `(fp_active, dram_active)` as DCGM would report
/// them, averaged over the whole run at clock `mhz`.
pub fn activities(spec: &DeviceSpec, sig: &WorkloadSignature, mhz: f64) -> (f64, f64) {
    let t = exec_time(spec, sig, mhz);
    let fp_avail = spec.peak_gflops_for_mix(sig.fp64_ratio) * 1e9 * (mhz / spec.max_core_mhz);
    let fp_active = if sig.flops > 0.0 {
        (sig.flops / t) / fp_avail
    } else {
        0.0
    };
    let dram_active = if sig.bytes > 0.0 {
        (sig.bytes / t) / (spec.peak_bw_gbs * 1e9)
    } else {
        0.0
    };
    (fp_active.clamp(0.0, 1.0), dram_active.clamp(0.0, 1.0))
}

/// Power draw (watts) given explicit activity readings.
///
/// Exposed separately so measured (noisy) activities can drive the power
/// calculation — measurement noise then correlates between activity and
/// power samples, as it does on real hardware.
pub fn power_from_activities(spec: &DeviceSpec, fp_active: f64, dram_active: f64, mhz: f64) -> f64 {
    let u = (spec.pwr_w_fp * fp_active + spec.pwr_w_dram * dram_active).clamp(0.0, 1.0);
    let v = voltage(spec, mhz);
    spec.idle_w + (spec.tdp_w - spec.idle_w) * u * (mhz / spec.max_core_mhz) * v * v
}

/// Noise-free power draw of `sig` at clock `mhz`, in watts.
pub fn power(spec: &DeviceSpec, sig: &WorkloadSignature, mhz: f64) -> f64 {
    let (fp, dram) = activities(spec, sig, mhz);
    power_from_activities(spec, fp, dram, mhz)
}

/// Noise-free energy of one run at clock `mhz`, in joules.
pub fn energy(spec: &DeviceSpec, sig: &WorkloadSignature, mhz: f64) -> f64 {
    power(spec, sig, mhz) * exec_time(spec, sig, mhz)
}

/// Achieved FLOP rate at `mhz` in GFLOP/s (paper Figure 1d).
pub fn achieved_gflops(spec: &DeviceSpec, sig: &WorkloadSignature, mhz: f64) -> f64 {
    sig.flops / exec_time(spec, sig, mhz) / 1e9
}

/// Achieved DRAM bandwidth at `mhz` in GB/s (paper Figure 1h).
pub fn achieved_bandwidth_gbs(spec: &DeviceSpec, sig: &WorkloadSignature, mhz: f64) -> f64 {
    sig.bytes / exec_time(spec, sig, mhz) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::DvfsGrid;
    use crate::signature::SignatureBuilder;

    /// DGEMM-like: heavily compute bound, FP64, near-peak efficiency.
    fn dgemm() -> WorkloadSignature {
        SignatureBuilder::new("dgemm")
            .flops(4.0e12)
            .bytes(6.0e10)
            .kappa_compute(0.95)
            .kappa_memory(0.60)
            .fp64_ratio(1.0)
            .overhead_s(0.005)
            .build()
    }

    /// STREAM-like: memory bound, negligible FP work per byte.
    fn stream() -> WorkloadSignature {
        SignatureBuilder::new("stream")
            .flops(4.0e10)
            .bytes(1.6e12)
            .kappa_compute(0.50)
            .kappa_memory(0.88)
            .fp64_ratio(1.0)
            .overhead_s(0.005)
            .build()
    }

    fn ga100() -> DeviceSpec {
        DeviceSpec::ga100()
    }

    #[test]
    fn voltage_curve_endpoints() {
        let s = ga100();
        assert!((voltage(&s, s.min_core_mhz) - s.volt_min).abs() < 1e-12);
        assert!((voltage(&s, s.max_core_mhz) - 1.0).abs() < 1e-12);
        assert!(voltage(&s, 0.0) >= s.volt_min); // clamped below range
    }

    #[test]
    fn voltage_is_monotonic() {
        let s = ga100();
        let grid = DvfsGrid::for_spec(&s);
        let vs: Vec<f64> = grid.supported().iter().map(|&f| voltage(&s, f)).collect();
        assert!(vs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn dgemm_draws_tdp_at_max_frequency() {
        let s = ga100();
        let p = power(&s, &dgemm(), s.max_core_mhz);
        assert!(
            (p - s.tdp_w).abs() / s.tdp_w < 0.08,
            "DGEMM at fmax should draw ~TDP, got {p:.0} W"
        );
    }

    #[test]
    fn stream_draws_half_tdp_at_max_frequency() {
        let s = ga100();
        let p = power(&s, &stream(), s.max_core_mhz);
        let frac = p / s.tdp_w;
        assert!(
            (0.40..=0.60).contains(&frac),
            "STREAM at fmax should draw ~TDP/2, got {:.0} W ({frac:.2} TDP)",
            p
        );
    }

    #[test]
    fn power_is_monotonic_in_frequency() {
        let s = ga100();
        let grid = DvfsGrid::for_spec(&s);
        for sig in [dgemm(), stream()] {
            let ps: Vec<f64> = grid.used().iter().map(|&f| power(&s, &sig, f)).collect();
            assert!(
                ps.windows(2).all(|w| w[0] < w[1]),
                "{} power not increasing",
                sig.name
            );
        }
    }

    #[test]
    fn time_is_nonincreasing_in_frequency() {
        let s = ga100();
        let grid = DvfsGrid::for_spec(&s);
        for sig in [dgemm(), stream()] {
            let ts: Vec<f64> = grid
                .used()
                .iter()
                .map(|&f| exec_time(&s, &sig, f))
                .collect();
            assert!(
                ts.windows(2).all(|w| w[0] >= w[1]),
                "{} time not non-increasing",
                sig.name
            );
        }
    }

    /// Figure 1c: DGEMM's optimal-energy frequency is ~1080 MHz.
    #[test]
    fn dgemm_energy_minimum_near_1080() {
        let s = ga100();
        let grid = DvfsGrid::for_spec(&s);
        let used = grid.used();
        let es: Vec<f64> = used.iter().map(|&f| energy(&s, &dgemm(), f)).collect();
        let f_opt = used[tensor_argmin(&es)];
        assert!(
            (930.0..=1200.0).contains(&f_opt),
            "DGEMM energy minimum at {f_opt} MHz, expected near 1080"
        );
    }

    /// Figure 1g: STREAM's optimal-energy frequency is ~1005 MHz.
    #[test]
    fn stream_energy_minimum_near_1005() {
        let s = ga100();
        let grid = DvfsGrid::for_spec(&s);
        let used = grid.used();
        let es: Vec<f64> = used.iter().map(|&f| energy(&s, &stream(), f)).collect();
        let f_opt = used[tensor_argmin(&es)];
        assert!(
            (870.0..=1100.0).contains(&f_opt),
            "STREAM energy minimum at {f_opt} MHz, expected near 1005"
        );
    }

    /// Figure 1d: FLOPS of a compute-bound kernel scale linearly with f.
    #[test]
    fn dgemm_flops_linear_in_frequency() {
        let s = ga100();
        let sig = {
            // No overhead for the linearity check.
            let mut d = dgemm();
            d.overhead_s = 0.0;
            d
        };
        let g1 = achieved_gflops(&s, &sig, 705.0);
        let g2 = achieved_gflops(&s, &sig, 1410.0);
        assert!((g2 / g1 - 2.0).abs() < 0.02, "ratio {:.3}", g2 / g1);
    }

    /// Figure 1h: STREAM bandwidth flattens above ~900 MHz.
    #[test]
    fn stream_bandwidth_saturates() {
        let s = ga100();
        let sig = stream();
        let b900 = achieved_bandwidth_gbs(&s, &sig, 900.0);
        let b1410 = achieved_bandwidth_gbs(&s, &sig, 1410.0);
        let b510 = achieved_bandwidth_gbs(&s, &sig, 510.0);
        // Less than 15% improvement from 900 to 1410...
        assert!(b1410 / b900 < 1.15, "900->1410 gained {:.2}x", b1410 / b900);
        // ...but strong improvement from 510 to 900.
        assert!(
            b900 / b510 > 1.4,
            "510->900 gained only {:.2}x",
            b900 / b510
        );
    }

    /// Figure 4: fp_active of both workloads is nearly DVFS-invariant.
    #[test]
    fn fp_active_is_dvfs_invariant() {
        let s = ga100();
        for sig in [dgemm(), stream()] {
            let grid = DvfsGrid::for_spec(&s);
            let acts: Vec<f64> = grid
                .used()
                .iter()
                .map(|&f| activities(&s, &sig, f).0)
                .collect();
            let lo = acts.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = acts.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            // Invariance in the paper's sense: the *absolute* swing is
            // small (Figure 4 plots activity on a 0..1 axis).
            assert!(
                hi - lo < f64::max(0.12 * hi, 0.01),
                "{}: fp_active varies {lo:.3}..{hi:.3} across DVFS",
                sig.name
            );
        }
    }

    /// Figure 4: dram_active of a compute-bound workload *does* vary.
    #[test]
    fn dgemm_dram_active_varies_with_dvfs() {
        let s = ga100();
        let (_, d_low) = activities(&s, &dgemm(), 510.0);
        let (_, d_high) = activities(&s, &dgemm(), 1410.0);
        assert!(
            d_high > d_low * 1.5,
            "dram_active {d_low:.3} -> {d_high:.3}"
        );
    }

    /// Figure 5: activities are input-size invariant.
    #[test]
    fn activities_are_input_size_invariant() {
        let s = ga100();
        let base = dgemm();
        let (fp1, _) = activities(&s, &base, 1410.0);
        let (fp8, _) = activities(&s, &base.scaled(8.0), 1410.0);
        assert!((fp1 - fp8).abs() / fp1 < 0.05);
    }

    #[test]
    fn memory_bound_kernel_ignores_high_frequencies() {
        let s = ga100();
        let t_1410 = exec_time(&s, &stream(), 1410.0);
        let t_1005 = exec_time(&s, &stream(), 1005.0);
        // Clocking down 1410 -> 1005 costs STREAM < 10% runtime.
        assert!(t_1005 / t_1410 < 1.10, "ratio {:.3}", t_1005 / t_1410);
        // But costs DGEMM ~1410/1005 = 40%.
        let d_1410 = exec_time(&s, &dgemm(), 1410.0);
        let d_1005 = exec_time(&s, &dgemm(), 1005.0);
        assert!(d_1005 / d_1410 > 1.30, "ratio {:.3}", d_1005 / d_1410);
    }

    #[test]
    fn energy_u_shape_has_higher_ends() {
        let s = ga100();
        let grid = DvfsGrid::for_spec(&s);
        let used = grid.used();
        for sig in [dgemm(), stream()] {
            let es: Vec<f64> = used.iter().map(|&f| energy(&s, &sig, f)).collect();
            let min = es.iter().copied().fold(f64::INFINITY, f64::min);
            assert!(
                es[0] > min * 1.05,
                "{}: low-end energy not elevated",
                sig.name
            );
            assert!(
                *es.last().unwrap() > min * 1.02,
                "{}: high-end energy not elevated",
                sig.name
            );
        }
    }

    #[test]
    fn gv100_models_are_sane_too() {
        let s = DeviceSpec::gv100();
        let p = power(&s, &dgemm(), s.max_core_mhz);
        assert!((p - s.tdp_w).abs() / s.tdp_w < 0.12, "GV100 DGEMM {p:.0} W");
        let grid = DvfsGrid::for_spec(&s);
        let ts: Vec<f64> = grid
            .used()
            .iter()
            .map(|&f| exec_time(&s, &dgemm(), f))
            .collect();
        assert!(ts.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn pure_compute_workload_has_zero_dram_active() {
        let s = ga100();
        let sig = SignatureBuilder::new("pure").flops(1e12).bytes(0.0).build();
        let (fp, dram) = activities(&s, &sig, 1410.0);
        assert!(fp > 0.0);
        assert_eq!(dram, 0.0);
    }

    fn tensor_argmin(xs: &[f64]) -> usize {
        xs.iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Power stays within [idle, ~TDP] for any valid signature and
            /// any used frequency.
            #[test]
            fn power_bounded(
                flops in 1.0e9..1.0e13f64,
                bytes in 1.0e8..1.0e12f64,
                kc in 0.1..1.0f64,
                km in 0.1..1.0f64,
                fidx in 0usize..61,
            ) {
                let s = ga100();
                let grid = DvfsGrid::for_spec(&s);
                let f = grid.used()[fidx];
                let sig = SignatureBuilder::new("w")
                    .flops(flops).bytes(bytes)
                    .kappa_compute(kc).kappa_memory(km)
                    .build();
                let p = power(&s, &sig, f);
                prop_assert!(p >= s.idle_w - 1e-9);
                prop_assert!(p <= s.tdp_w * 1.01);
            }

            /// Activities are valid fractions everywhere.
            #[test]
            fn activities_are_fractions(
                flops in 1.0e9..1.0e13f64,
                bytes in 1.0e8..1.0e12f64,
                fidx in 0usize..61,
            ) {
                let s = ga100();
                let grid = DvfsGrid::for_spec(&s);
                let f = grid.used()[fidx];
                let sig = SignatureBuilder::new("w").flops(flops).bytes(bytes).build();
                let (fp, dram) = activities(&s, &sig, f);
                prop_assert!((0.0..=1.0).contains(&fp));
                prop_assert!((0.0..=1.0).contains(&dram));
            }

            /// Energy equals power times time by construction.
            #[test]
            fn energy_identity(flops in 1.0e9..1.0e13f64, bytes in 1.0e8..1.0e12f64) {
                let s = ga100();
                let sig = SignatureBuilder::new("w").flops(flops).bytes(bytes).build();
                let f = 1005.0;
                let e = energy(&s, &sig, f);
                let pt = power(&s, &sig, f) * exec_time(&s, &sig, f);
                prop_assert!((e - pt).abs() <= 1e-9 * pt.abs());
            }
        }
    }
}
