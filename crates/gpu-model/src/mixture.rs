//! Multi-phase workloads (real applications).
//!
//! A real application like LAMMPS or BERT is not one kernel: it alternates
//! compute-bound kernels, memory-bound kernels and host-side work. A
//! [`PhasedWorkload`] is a weighted sequence of [`WorkloadSignature`]
//! phases. Its aggregate behaviour is the exact time-weighted combination
//! of its phases — which, crucially, is *not* representable as any single
//! signature. That gap is what makes real applications genuinely harder for
//! the paper's models than the single-kernel training benchmarks, and it
//! reproduces the paper's observation that per-application accuracy drops
//! from ~99 % (seen benchmarks) to 88–98 % (unseen applications).

use crate::arch::DeviceSpec;
use crate::model;
use crate::noise::NoiseModel;
use crate::sample::{measure_aggregate, MetricSample, SampleMeta};
use crate::signature::WorkloadSignature;
use serde::{Deserialize, Serialize};

/// One phase of a multi-phase workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// The kernel signature executed in this phase.
    pub signature: WorkloadSignature,
    /// How many times this phase runs per application run.
    pub repeats: f64,
}

/// A workload made of weighted phases (possibly just one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedWorkload {
    /// Application name.
    pub name: String,
    /// The phases, executed `repeats` times each per run.
    pub phases: Vec<Phase>,
}

impl PhasedWorkload {
    /// Wraps a single signature as a one-phase workload.
    pub fn single(sig: WorkloadSignature) -> Self {
        Self {
            name: sig.name.clone(),
            phases: vec![Phase {
                signature: sig,
                repeats: 1.0,
            }],
        }
    }

    /// Builds a named multi-phase workload.
    ///
    /// # Panics
    /// Panics if `phases` is empty or any repeat count is non-positive.
    pub fn new(name: impl Into<String>, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "workload needs at least one phase");
        assert!(
            phases.iter().all(|p| p.repeats > 0.0),
            "phase repeat counts must be positive"
        );
        Self {
            name: name.into(),
            phases,
        }
    }

    /// Total execution time at clock `mhz`, in seconds.
    pub fn exec_time(&self, spec: &DeviceSpec, mhz: f64) -> f64 {
        self.phases
            .iter()
            .map(|p| p.repeats * model::exec_time(spec, &p.signature, mhz))
            .sum()
    }

    /// Total energy at clock `mhz`, in joules.
    pub fn energy(&self, spec: &DeviceSpec, mhz: f64) -> f64 {
        self.phases
            .iter()
            .map(|p| p.repeats * model::energy(spec, &p.signature, mhz))
            .sum()
    }

    /// Time-averaged power at clock `mhz`, in watts.
    pub fn power(&self, spec: &DeviceSpec, mhz: f64) -> f64 {
        self.energy(spec, mhz) / self.exec_time(spec, mhz)
    }

    /// Time-weighted aggregate `(fp_active, dram_active)` at clock `mhz` —
    /// what a DCGM average over the whole run would report.
    pub fn activities(&self, spec: &DeviceSpec, mhz: f64) -> (f64, f64) {
        let total_t = self.exec_time(spec, mhz);
        let mut fp = 0.0;
        let mut dram = 0.0;
        for p in &self.phases {
            let t = p.repeats * model::exec_time(spec, &p.signature, mhz);
            let (f, d) = model::activities(spec, &p.signature, mhz);
            fp += f * t;
            dram += d * t;
        }
        (fp / total_t, dram / total_t)
    }

    /// Time-weighted [`SampleMeta`] for measurement synthesis.
    pub fn sample_meta(&self, spec: &DeviceSpec, mhz: f64) -> SampleMeta {
        let total_t = self.exec_time(spec, mhz);
        let mut acc = SampleMeta {
            name: self.name.clone(),
            kappa_compute: 0.0,
            kappa_memory: 0.0,
            fp64_ratio: 0.0,
            sm_occupancy: 0.0,
            pcie_tx_mbs: 0.0,
            pcie_rx_mbs: 0.0,
        };
        for p in &self.phases {
            let w = p.repeats * model::exec_time(spec, &p.signature, mhz) / total_t;
            acc.kappa_compute += w * p.signature.kappa_compute;
            acc.kappa_memory += w * p.signature.kappa_memory;
            acc.fp64_ratio += w * p.signature.fp64_ratio;
            acc.sm_occupancy += w * p.signature.sm_occupancy;
            acc.pcie_tx_mbs += w * p.signature.pcie_tx_mbs;
            acc.pcie_rx_mbs += w * p.signature.pcie_rx_mbs;
        }
        acc
    }

    /// Simulates one measured run at clock `mhz` (deterministic noise).
    pub fn measure(
        &self,
        spec: &DeviceSpec,
        mhz: f64,
        run: u32,
        noise: &NoiseModel,
    ) -> MetricSample {
        let (fp, dram) = self.activities(spec, mhz);
        let t = self.exec_time(spec, mhz);
        let meta = self.sample_meta(spec, mhz);
        measure_aggregate(spec, &meta, fp, dram, t, mhz, run, noise)
    }

    /// Fraction of execution time at `mhz` that is DVFS-insensitive
    /// overhead.
    pub fn overhead_fraction(&self, spec: &DeviceSpec, mhz: f64) -> f64 {
        let oh: f64 = self
            .phases
            .iter()
            .map(|p| p.repeats * p.signature.overhead_s)
            .sum();
        oh / self.exec_time(spec, mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::SignatureBuilder;

    fn compute_phase() -> WorkloadSignature {
        SignatureBuilder::new("compute-phase")
            .flops(2.0e12)
            .bytes(2.0e10)
            .kappa_compute(0.9)
            .kappa_memory(0.6)
            .build()
    }

    fn memory_phase() -> WorkloadSignature {
        SignatureBuilder::new("memory-phase")
            .flops(2.0e10)
            .bytes(8.0e11)
            .kappa_compute(0.5)
            .kappa_memory(0.85)
            .build()
    }

    fn app() -> PhasedWorkload {
        PhasedWorkload::new(
            "app",
            vec![
                Phase {
                    signature: compute_phase(),
                    repeats: 3.0,
                },
                Phase {
                    signature: memory_phase(),
                    repeats: 2.0,
                },
            ],
        )
    }

    #[test]
    fn single_matches_model_functions() {
        let spec = DeviceSpec::ga100();
        let sig = compute_phase();
        let w = PhasedWorkload::single(sig.clone());
        for &f in &[510.0, 900.0, 1410.0] {
            assert!((w.exec_time(&spec, f) - model::exec_time(&spec, &sig, f)).abs() < 1e-12);
            assert!((w.power(&spec, f) - model::power(&spec, &sig, f)).abs() < 1e-9);
            let (a, b) = w.activities(&spec, f);
            let (c, d) = model::activities(&spec, &sig, f);
            assert!((a - c).abs() < 1e-12 && (b - d).abs() < 1e-12);
        }
    }

    #[test]
    fn mixture_time_is_sum_of_phases() {
        let spec = DeviceSpec::ga100();
        let w = app();
        let t = w.exec_time(&spec, 1005.0);
        let expect = 3.0 * model::exec_time(&spec, &compute_phase(), 1005.0)
            + 2.0 * model::exec_time(&spec, &memory_phase(), 1005.0);
        assert!((t - expect).abs() < 1e-12);
    }

    #[test]
    fn mixture_power_between_phase_powers() {
        let spec = DeviceSpec::ga100();
        let w = app();
        let p = w.power(&spec, 1410.0);
        let pc = model::power(&spec, &compute_phase(), 1410.0);
        let pm = model::power(&spec, &memory_phase(), 1410.0);
        assert!(
            p > pm.min(pc) && p < pm.max(pc),
            "{pm} <= {p} <= {pc} violated"
        );
    }

    #[test]
    fn aggregate_power_consistent_with_activities() {
        // Power is affine in the activity blend, so the aggregate power
        // must equal the power computed from aggregate activities.
        let spec = DeviceSpec::ga100();
        let w = app();
        for &f in &[600.0, 1005.0, 1410.0] {
            let (fp, dram) = w.activities(&spec, f);
            let direct = model::power_from_activities(&spec, fp, dram, f);
            assert!(
                (direct - w.power(&spec, f)).abs() < 1.0,
                "at {f} MHz: {direct} vs {}",
                w.power(&spec, f)
            );
        }
    }

    #[test]
    fn measure_is_deterministic() {
        let spec = DeviceSpec::ga100();
        let nm = NoiseModel::default_bench();
        let a = app().measure(&spec, 1110.0, 0, &nm);
        let b = app().measure(&spec, 1110.0, 0, &nm);
        assert_eq!(a, b);
        assert_eq!(a.workload, "app");
    }

    #[test]
    fn overhead_fraction_rises_with_frequency() {
        // Kernel time shrinks with f while overhead is fixed, so the
        // overhead fraction grows with frequency.
        let spec = DeviceSpec::ga100();
        let sig = SignatureBuilder::new("oh")
            .flops(1.0e12)
            .bytes(1.0e10)
            .overhead_s(0.05)
            .build();
        let w = PhasedWorkload::single(sig);
        let lo = w.overhead_fraction(&spec, 510.0);
        let hi = w.overhead_fraction(&spec, 1410.0);
        assert!(hi > lo);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panic() {
        let _ = PhasedWorkload::new("x", vec![]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_repeats_panic() {
        let _ = PhasedWorkload::new(
            "x",
            vec![Phase {
                signature: compute_phase(),
                repeats: 0.0,
            }],
        );
    }

    mod props {
        use super::*;
        use crate::signature::SignatureBuilder;
        use proptest::prelude::*;

        fn arb_phase() -> impl Strategy<Value = Phase> {
            (
                1.0e10..1.0e13f64,
                1.0e9..1.0e12f64,
                0.1..1.0f64,
                0.1..1.0f64,
                0.0..1.0f64,
                1.0..5.0f64,
            )
                .prop_map(|(flops, bytes, kc, km, fp64, repeats)| Phase {
                    signature: SignatureBuilder::new("p")
                        .flops(flops)
                        .bytes(bytes)
                        .kappa_compute(kc)
                        .kappa_memory(km)
                        .fp64_ratio(fp64)
                        .build(),
                    repeats,
                })
        }

        proptest! {
            /// Mixture power is bounded by the min/max phase power.
            #[test]
            fn power_within_phase_envelope(
                phases in proptest::collection::vec(arb_phase(), 1..5),
                fidx in 0usize..61,
            ) {
                let spec = DeviceSpec::ga100();
                let f = 510.0 + 15.0 * fidx as f64;
                let w = PhasedWorkload::new("w", phases.clone());
                let p = w.power(&spec, f);
                let lo = phases
                    .iter()
                    .map(|ph| crate::model::power(&spec, &ph.signature, f))
                    .fold(f64::INFINITY, f64::min);
                let hi = phases
                    .iter()
                    .map(|ph| crate::model::power(&spec, &ph.signature, f))
                    .fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{lo} <= {p} <= {hi}");
            }

            /// Energy is additive over phases and equals P*T for the mixture.
            #[test]
            fn energy_additivity(
                phases in proptest::collection::vec(arb_phase(), 1..5),
                fidx in 0usize..61,
            ) {
                let spec = DeviceSpec::ga100();
                let f = 510.0 + 15.0 * fidx as f64;
                let w = PhasedWorkload::new("w", phases.clone());
                let direct: f64 = phases
                    .iter()
                    .map(|ph| ph.repeats * crate::model::energy(&spec, &ph.signature, f))
                    .sum();
                prop_assert!((w.energy(&spec, f) - direct).abs() <= 1e-6 * direct);
                let pt = w.power(&spec, f) * w.exec_time(&spec, f);
                prop_assert!((w.energy(&spec, f) - pt).abs() <= 1e-6 * pt);
            }

            /// Mixture time is non-increasing in frequency.
            #[test]
            fn time_monotone_in_frequency(phases in proptest::collection::vec(arb_phase(), 1..4)) {
                let spec = DeviceSpec::ga100();
                let w = PhasedWorkload::new("w", phases);
                let mut prev = f64::INFINITY;
                for i in 0..61 {
                    let t = w.exec_time(&spec, 510.0 + 15.0 * i as f64);
                    prop_assert!(t <= prev + 1e-12);
                    prev = t;
                }
            }
        }
    }
}
