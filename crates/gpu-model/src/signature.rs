//! Workload signatures: the simulator-facing description of a workload.

use serde::{Deserialize, Serialize};

/// Everything the simulator needs to know about one workload (one kernel,
/// one benchmark run, or one phase of a real application).
///
/// A signature is *device independent*: it captures how much work the
/// workload does (`flops`, `bytes`), how efficiently it can use the two
/// rooflines (`kappa_compute`, `kappa_memory`), its FP64/FP32 mix, and its
/// DVFS-insensitive host-side overhead. The `kernels` crate produces these
/// from instrumented CPU mini-kernel runs; the simulator turns them into
/// power/time/metrics on a particular [`crate::DeviceSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSignature {
    /// Workload name (used in reports and seeding).
    pub name: String,
    /// Total floating-point operations per run.
    pub flops: f64,
    /// Total DRAM traffic per run, in bytes.
    pub bytes: f64,
    /// Host-side / launch overhead per run in seconds; this part of the
    /// execution time does not scale with GPU core frequency.
    pub overhead_s: f64,
    /// Fraction of the device's peak FLOP rate this workload can achieve
    /// when compute bound (0, 1].
    pub kappa_compute: f64,
    /// Fraction of the device's saturated bandwidth this workload can
    /// achieve when memory bound (0, 1].
    pub kappa_memory: f64,
    /// Fraction of floating-point work executed in FP64 (rest is FP32).
    pub fp64_ratio: f64,
    /// Achieved SM occupancy (constant per workload, one of the paper's
    /// low-MI features).
    pub sm_occupancy: f64,
    /// Mean PCIe transmit rate in MB/s (host to device).
    pub pcie_tx_mbs: f64,
    /// Mean PCIe receive rate in MB/s (device to host).
    pub pcie_rx_mbs: f64,
}

impl WorkloadSignature {
    /// Arithmetic intensity in FLOP/byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            return f64::INFINITY;
        }
        self.flops / self.bytes
    }

    /// Validates that the signature is physically sensible.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("signature needs a name".into());
        }
        if !(self.flops >= 0.0 && self.bytes >= 0.0) {
            return Err(format!("{}: negative work volume", self.name));
        }
        if self.flops == 0.0 && self.bytes == 0.0 {
            return Err(format!("{}: does no work", self.name));
        }
        if !(0.0 < self.kappa_compute && self.kappa_compute <= 1.0) {
            return Err(format!("{}: kappa_compute out of (0,1]", self.name));
        }
        if !(0.0 < self.kappa_memory && self.kappa_memory <= 1.0) {
            return Err(format!("{}: kappa_memory out of (0,1]", self.name));
        }
        if !(0.0..=1.0).contains(&self.fp64_ratio) {
            return Err(format!("{}: fp64_ratio out of [0,1]", self.name));
        }
        if !(0.0..=1.0).contains(&self.sm_occupancy) {
            return Err(format!("{}: sm_occupancy out of [0,1]", self.name));
        }
        if self.overhead_s < 0.0 {
            return Err(format!("{}: negative overhead", self.name));
        }
        Ok(())
    }

    /// Scales the work volume (flops, bytes, overhead) by `factor`,
    /// modelling a change of input size. Activity ratios are untouched —
    /// this is precisely the input-size invariance of paper Figure 5.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            name: self.name.clone(),
            flops: self.flops * factor,
            bytes: self.bytes * factor,
            overhead_s: self.overhead_s * factor.sqrt(),
            ..self.clone()
        }
    }
}

/// Builder for [`WorkloadSignature`] with reasonable defaults.
#[derive(Debug, Clone)]
pub struct SignatureBuilder {
    sig: WorkloadSignature,
}

impl SignatureBuilder {
    /// Starts a builder for workload `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            sig: WorkloadSignature {
                name: name.into(),
                flops: 0.0,
                bytes: 0.0,
                overhead_s: 0.0,
                kappa_compute: 0.7,
                kappa_memory: 0.8,
                fp64_ratio: 1.0,
                sm_occupancy: 0.5,
                pcie_tx_mbs: 50.0,
                pcie_rx_mbs: 20.0,
            },
        }
    }

    /// Sets the total FLOPs.
    pub fn flops(mut self, v: f64) -> Self {
        self.sig.flops = v;
        self
    }

    /// Sets the total DRAM bytes.
    pub fn bytes(mut self, v: f64) -> Self {
        self.sig.bytes = v;
        self
    }

    /// Sets the DVFS-insensitive overhead in seconds.
    pub fn overhead_s(mut self, v: f64) -> Self {
        self.sig.overhead_s = v;
        self
    }

    /// Sets the compute-roofline efficiency.
    pub fn kappa_compute(mut self, v: f64) -> Self {
        self.sig.kappa_compute = v;
        self
    }

    /// Sets the memory-roofline efficiency.
    pub fn kappa_memory(mut self, v: f64) -> Self {
        self.sig.kappa_memory = v;
        self
    }

    /// Sets the FP64 fraction of FP work.
    pub fn fp64_ratio(mut self, v: f64) -> Self {
        self.sig.fp64_ratio = v;
        self
    }

    /// Sets the SM occupancy.
    pub fn sm_occupancy(mut self, v: f64) -> Self {
        self.sig.sm_occupancy = v;
        self
    }

    /// Sets the PCIe tx/rx rates in MB/s.
    pub fn pcie_mbs(mut self, tx: f64, rx: f64) -> Self {
        self.sig.pcie_tx_mbs = tx;
        self.sig.pcie_rx_mbs = rx;
        self
    }

    /// Finalizes and validates the signature.
    ///
    /// # Panics
    /// Panics if the signature is invalid — builder misuse is a programming
    /// error in this codebase, not an input condition.
    pub fn build(self) -> WorkloadSignature {
        if let Err(e) = self.sig.validate() {
            panic!("invalid workload signature: {e}");
        }
        self.sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dgemm_like() -> WorkloadSignature {
        SignatureBuilder::new("dgemm")
            .flops(2.0e12)
            .bytes(5.0e10)
            .kappa_compute(0.9)
            .kappa_memory(0.6)
            .build()
    }

    #[test]
    fn builder_produces_valid_signature() {
        let s = dgemm_like();
        assert!(s.validate().is_ok());
        assert_eq!(s.name, "dgemm");
    }

    #[test]
    fn arithmetic_intensity() {
        let s = dgemm_like();
        assert!((s.arithmetic_intensity() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn intensity_infinite_without_bytes() {
        let s = SignatureBuilder::new("pure-compute")
            .flops(1.0e9)
            .bytes(0.0)
            .build();
        assert!(s.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn scaled_preserves_intensity() {
        let s = dgemm_like();
        let big = s.scaled(8.0);
        assert!((big.arithmetic_intensity() - s.arithmetic_intensity()).abs() < 1e-9);
        assert_eq!(big.flops, s.flops * 8.0);
        assert_eq!(big.kappa_compute, s.kappa_compute);
    }

    #[test]
    #[should_panic(expected = "invalid workload signature")]
    fn builder_panics_on_zero_work() {
        let _ = SignatureBuilder::new("noop").build();
    }

    #[test]
    fn validate_rejects_bad_kappa() {
        let mut s = dgemm_like();
        s.kappa_compute = 0.0;
        assert!(s.validate().is_err());
        s.kappa_compute = 1.5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_fp64_ratio() {
        let mut s = dgemm_like();
        s.fp64_ratio = -0.1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_name() {
        let mut s = dgemm_like();
        s.name = String::new();
        assert!(s.validate().is_err());
    }
}
