//! Voltage design-space exploration (the paper's stated future work).
//!
//! The paper's conclusion: *"In the future, we plan to evaluate the voltage
//! design space using the proposed methodology on GPUs supporting change of
//! voltage configuration."* This module models that space: an undervolt
//! scales the nominal V(f) curve downward, cutting dynamic power
//! quadratically at **zero performance cost** — until the voltage drops
//! below the frequency-dependent stability floor.
//!
//! The stability model follows the usual silicon shape: the guard-band is
//! widest at low clocks (~10 %) and narrows toward the top bin (~3 %),
//! because vendors fuse the V-f curve with more margin where leakage
//! dominates and almost none at the rated boost point.

use crate::arch::DeviceSpec;
use crate::model;
use crate::signature::WorkloadSignature;
use serde::{Deserialize, Serialize};

/// Undervolt guard-band at the lowest supported frequency (fraction of
/// nominal voltage).
const MARGIN_LOW_F: f64 = 0.10;
/// Undervolt guard-band at the maximum frequency.
const MARGIN_HIGH_F: f64 = 0.03;

/// A voltage offset applied on top of the nominal V(f) curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageOffset {
    /// Multiplier on the nominal voltage (1.0 = stock; 0.95 = 5 % undervolt).
    pub scale: f64,
}

impl VoltageOffset {
    /// The stock configuration.
    pub fn nominal() -> Self {
        Self { scale: 1.0 }
    }

    /// An undervolt of `percent` percent (e.g. `5.0` -> scale 0.95).
    ///
    /// # Panics
    /// Panics for offsets outside [0, 25] percent — beyond any plausible
    /// silicon margin, so a request there is a bug in the caller.
    pub fn undervolt_pct(percent: f64) -> Self {
        assert!(
            (0.0..=25.0).contains(&percent),
            "undervolt of {percent}% is outside the modelled range"
        );
        Self {
            scale: 1.0 - percent / 100.0,
        }
    }
}

/// Minimum stable voltage (normalized) at core clock `mhz`: the nominal
/// curve minus the frequency-dependent guard-band.
pub fn min_stable_voltage(spec: &DeviceSpec, mhz: f64) -> f64 {
    let x = ((mhz - spec.min_core_mhz) / (spec.max_core_mhz - spec.min_core_mhz)).clamp(0.0, 1.0);
    let margin = MARGIN_LOW_F + (MARGIN_HIGH_F - MARGIN_LOW_F) * x;
    model::voltage(spec, mhz) * (1.0 - margin)
}

/// Whether the device is stable at `(mhz, offset)`.
pub fn is_stable(spec: &DeviceSpec, mhz: f64, offset: VoltageOffset) -> bool {
    model::voltage(spec, mhz) * offset.scale >= min_stable_voltage(spec, mhz) - 1e-12
}

/// Power at `(mhz, offset)`, or `None` if the operating point is unstable.
///
/// Dynamic power scales with V²; the static floor scales linearly with V
/// (leakage is roughly proportional to supply in this regime).
pub fn power(
    spec: &DeviceSpec,
    sig: &WorkloadSignature,
    mhz: f64,
    offset: VoltageOffset,
) -> Option<f64> {
    if !is_stable(spec, mhz, offset) {
        return None;
    }
    let nominal = model::power(spec, sig, mhz);
    let dynamic = nominal - spec.idle_w;
    Some(spec.idle_w * offset.scale + dynamic * offset.scale * offset.scale)
}

/// Energy at `(mhz, offset)` — execution time is voltage-independent.
pub fn energy(
    spec: &DeviceSpec,
    sig: &WorkloadSignature,
    mhz: f64,
    offset: VoltageOffset,
) -> Option<f64> {
    Some(power(spec, sig, mhz, offset)? * model::exec_time(spec, sig, mhz))
}

/// The deepest stable undervolt (as a [`VoltageOffset`]) at clock `mhz`.
pub fn deepest_stable(spec: &DeviceSpec, mhz: f64) -> VoltageOffset {
    VoltageOffset {
        scale: min_stable_voltage(spec, mhz) / model::voltage(spec, mhz),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::SignatureBuilder;

    fn sig() -> WorkloadSignature {
        SignatureBuilder::new("uv")
            .flops(4e12)
            .bytes(6e10)
            .kappa_compute(0.9)
            .build()
    }

    #[test]
    fn nominal_is_always_stable_and_matches_base_model() {
        let spec = DeviceSpec::ga100();
        for &f in &[510.0, 900.0, 1410.0] {
            assert!(is_stable(&spec, f, VoltageOffset::nominal()));
            let p = power(&spec, &sig(), f, VoltageOffset::nominal()).unwrap();
            assert!((p - model::power(&spec, &sig(), f)).abs() < 1e-9);
        }
    }

    #[test]
    fn undervolting_cuts_power_without_touching_time() {
        let spec = DeviceSpec::ga100();
        let uv = VoltageOffset::undervolt_pct(5.0);
        let p0 = power(&spec, &sig(), 900.0, VoltageOffset::nominal()).unwrap();
        let p1 = power(&spec, &sig(), 900.0, uv).unwrap();
        assert!(p1 < p0 * 0.95, "5% undervolt should cut >5% power (V^2)");
        // Time is untouched by construction.
        assert_eq!(
            model::exec_time(&spec, &sig(), 900.0),
            model::exec_time(&spec, &sig(), 900.0)
        );
    }

    #[test]
    fn margin_narrows_at_high_frequency() {
        let spec = DeviceSpec::ga100();
        let deep_low = deepest_stable(&spec, 510.0);
        let deep_high = deepest_stable(&spec, 1410.0);
        assert!(
            deep_low.scale < deep_high.scale,
            "more headroom at low clocks"
        );
        // 8% undervolt: fine at 510 MHz, unstable at 1410 MHz.
        let uv8 = VoltageOffset::undervolt_pct(8.0);
        assert!(is_stable(&spec, 510.0, uv8));
        assert!(!is_stable(&spec, 1410.0, uv8));
    }

    #[test]
    fn unstable_points_return_none() {
        let spec = DeviceSpec::ga100();
        let uv = VoltageOffset::undervolt_pct(20.0);
        assert_eq!(power(&spec, &sig(), 1410.0, uv), None);
        assert_eq!(energy(&spec, &sig(), 1410.0, uv), None);
    }

    #[test]
    fn deepest_stable_is_exactly_at_the_floor() {
        let spec = DeviceSpec::ga100();
        for &f in &[510.0, 1005.0, 1410.0] {
            let deep = deepest_stable(&spec, f);
            assert!(is_stable(&spec, f, deep));
            let slightly_deeper = VoltageOffset {
                scale: deep.scale * 0.999,
            };
            assert!(!is_stable(&spec, f, slightly_deeper));
        }
    }

    #[test]
    fn energy_identity_holds_under_offset() {
        let spec = DeviceSpec::ga100();
        let uv = VoltageOffset::undervolt_pct(4.0);
        let e = energy(&spec, &sig(), 900.0, uv).unwrap();
        let pt = power(&spec, &sig(), 900.0, uv).unwrap() * model::exec_time(&spec, &sig(), 900.0);
        assert!((e - pt).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside the modelled range")]
    fn absurd_undervolt_rejected() {
        let _ = VoltageOffset::undervolt_pct(40.0);
    }
}
