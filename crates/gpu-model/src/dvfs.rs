//! DVFS frequency grids (paper Table 1: "Used DVFS Configurations").

use crate::arch::DeviceSpec;
use serde::{Deserialize, Serialize};

/// The discrete set of core frequencies a device supports, and the subset
/// actually used in experiments.
///
/// The paper uses 61 of GA100's 81 supported states and 117 of GV100's 167,
/// excluding everything below 510 MHz ("heavy performance degradation").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsGrid {
    supported: Vec<f64>,
    used_from: f64,
}

impl DvfsGrid {
    /// Builds the grid for a device spec.
    pub fn for_spec(spec: &DeviceSpec) -> Self {
        let mut supported = Vec::new();
        let n = ((spec.max_core_mhz - spec.min_core_mhz) / spec.step_mhz).round() as usize;
        for i in 0..=n {
            let f = spec.min_core_mhz + i as f64 * spec.step_mhz;
            // Real clocks are integer MHz; GV100's 7.5 MHz mean step becomes
            // an alternating 7/8 pattern after rounding.
            supported.push(f.round());
        }
        Self {
            supported,
            used_from: spec.min_used_mhz,
        }
    }

    /// All supported frequencies, ascending, in MHz.
    pub fn supported(&self) -> &[f64] {
        &self.supported
    }

    /// The frequencies used in experiments (>= the 510 MHz floor), ascending.
    pub fn used(&self) -> Vec<f64> {
        self.supported
            .iter()
            .copied()
            .filter(|&f| f >= self.used_from)
            .collect()
    }

    /// Number of supported states.
    pub fn num_supported(&self) -> usize {
        self.supported.len()
    }

    /// Number of used states.
    pub fn num_used(&self) -> usize {
        self.used().len()
    }

    /// The maximum (default) frequency.
    pub fn max(&self) -> f64 {
        *self.supported.last().expect("grid is never empty")
    }

    /// The nearest supported frequency to `mhz`.
    pub fn nearest(&self, mhz: f64) -> f64 {
        *self
            .supported
            .iter()
            .min_by(|a, b| {
                (*a - mhz)
                    .abs()
                    .partial_cmp(&(*b - mhz).abs())
                    .expect("no NaN frequencies")
            })
            .expect("grid is never empty")
    }

    /// Whether `mhz` is exactly a supported state.
    pub fn is_supported(&self, mhz: f64) -> bool {
        self.supported.contains(&mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::DeviceSpec;

    #[test]
    fn ga100_has_81_supported_61_used() {
        let g = DvfsGrid::for_spec(&DeviceSpec::ga100());
        assert_eq!(g.num_supported(), 81);
        assert_eq!(g.num_used(), 61);
        assert_eq!(g.max(), 1410.0);
        assert_eq!(g.used()[0], 510.0);
    }

    #[test]
    fn gv100_has_167_supported_117_used() {
        let g = DvfsGrid::for_spec(&DeviceSpec::gv100());
        assert_eq!(g.num_supported(), 167);
        assert_eq!(g.num_used(), 117);
        assert_eq!(g.max(), 1380.0);
    }

    #[test]
    fn used_frequencies_ascend() {
        let g = DvfsGrid::for_spec(&DeviceSpec::ga100());
        let used = g.used();
        assert!(used.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn nearest_snaps_to_grid() {
        let g = DvfsGrid::for_spec(&DeviceSpec::ga100());
        assert_eq!(g.nearest(1000.0), 1005.0);
        assert_eq!(g.nearest(5000.0), 1410.0);
        assert_eq!(g.nearest(0.0), 210.0);
    }

    #[test]
    fn is_supported_checks_membership() {
        let g = DvfsGrid::for_spec(&DeviceSpec::ga100());
        assert!(g.is_supported(1410.0));
        assert!(g.is_supported(510.0));
        assert!(!g.is_supported(512.0));
    }

    #[test]
    fn gv100_grid_is_integer_mhz() {
        let g = DvfsGrid::for_spec(&DeviceSpec::gv100());
        assert!(g.supported().iter().all(|f| f.fract() == 0.0));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// nearest() returns a supported state minimizing the distance.
            #[test]
            fn nearest_minimizes_distance(mhz in -100.0..2000.0f64) {
                for spec in [DeviceSpec::ga100(), DeviceSpec::gv100()] {
                    let g = DvfsGrid::for_spec(&spec);
                    let n = g.nearest(mhz);
                    prop_assert!(g.is_supported(n));
                    for &f in g.supported() {
                        prop_assert!((n - mhz).abs() <= (f - mhz).abs() + 1e-9);
                    }
                }
            }

            /// The used subset is exactly the supported states >= the floor.
            #[test]
            fn used_is_floor_filter(_x in 0..1i32) {
                for spec in [DeviceSpec::ga100(), DeviceSpec::gv100()] {
                    let g = DvfsGrid::for_spec(&spec);
                    let expect: Vec<f64> = g
                        .supported()
                        .iter()
                        .copied()
                        .filter(|&f| f >= spec.min_used_mhz)
                        .collect();
                    prop_assert_eq!(g.used(), expect);
                }
            }
        }
    }
}
