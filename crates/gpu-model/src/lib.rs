//! Analytical GPU DVFS power/performance simulator.
//!
//! This crate is the hardware substrate of the reproduction: it stands in
//! for the NVIDIA GA100 (Ampere A100) and GV100 (Volta V100) GPUs of the
//! paper. It models, per device:
//!
//! * the DVFS frequency grid ([`dvfs::DvfsGrid`], 81/167 supported states,
//!   61/117 used, paper Table 1);
//! * a voltage–frequency curve ([`model::voltage`]);
//! * dynamic + static power as a function of workload activity and clock
//!   ([`model::power`]) — calibrated so a compute-bound workload draws the
//!   full TDP at f_max and a memory-bound one about half of it (Figure 1);
//! * a roofline execution-time model with bandwidth saturation around
//!   900 MHz ([`model::exec_time`], Figure 1 f/h);
//! * synthesis of the twelve DCGM utilization metrics the paper collects,
//!   with deterministic, seeded measurement noise ([`sample`]).
//!
//! The activity features the paper builds its models on — `fp_active` and
//! `dram_active` — are *derived* quantities here (achieved FLOPs over
//! available FLOPs, achieved bytes over peak bandwidth), so their
//! DVFS-invariance and input-size-invariance (paper Figures 4 and 5)
//! emerge from the physics instead of being postulated.

pub mod arch;
pub mod dvfs;
pub mod mixture;
pub mod model;
pub mod noise;
pub mod sample;
pub mod signature;
pub mod undervolt;

pub use arch::{ArchKind, DeviceSpec};
pub use dvfs::DvfsGrid;
pub use mixture::{Phase, PhasedWorkload};
pub use noise::NoiseModel;
pub use sample::MetricSample;
pub use signature::{SignatureBuilder, WorkloadSignature};
