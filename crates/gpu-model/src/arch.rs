//! Device specifications for the simulated GPUs (paper Table 1).

use serde::{Deserialize, Serialize};

/// GPU architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchKind {
    /// NVIDIA Ampere (A100 / GA100).
    Ampere,
    /// NVIDIA Volta (V100 / GV100).
    Volta,
}

impl ArchKind {
    /// Marketing name of the chip.
    pub fn chip_name(&self) -> &'static str {
        match self {
            ArchKind::Ampere => "GA100",
            ArchKind::Volta => "GV100",
        }
    }
}

/// Static specification of a simulated GPU.
///
/// The public fields mirror the paper's Table 1; the `pwr_*`/`volt_*`
/// fields parameterize the analytical power and time models
/// (see [`crate::model`]). Those are *per-architecture* calibration
/// constants — they intentionally differ between GA100 and GV100 so that a
/// model trained on one architecture carries a small systematic error onto
/// the other, as the paper's cross-architecture evaluation observes
/// (Table 3: GV100 accuracy is a few points below GA100).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Architecture family.
    pub arch: ArchKind,
    /// Lowest supported core frequency in MHz (below the *used* range).
    pub min_core_mhz: f64,
    /// Highest supported core frequency in MHz (also the default).
    pub max_core_mhz: f64,
    /// Lowest frequency actually used in experiments (the paper excludes
    /// configurations below 510 MHz for their heavy performance loss).
    pub min_used_mhz: f64,
    /// Core frequency step in MHz between adjacent DVFS states.
    pub step_mhz: f64,
    /// Fixed memory clock in MHz (core DVFS does not move it).
    pub memory_mhz: f64,
    /// HBM2e capacity in GB.
    pub memory_gb: f64,
    /// Peak memory bandwidth in GB/s.
    pub peak_bw_gbs: f64,
    /// Peak FP64 throughput in GFLOP/s at the maximum core clock.
    pub peak_fp64_gflops: f64,
    /// Peak FP32 throughput in GFLOP/s at the maximum core clock.
    pub peak_fp32_gflops: f64,
    /// Thermal design power in watts.
    pub tdp_w: f64,
    /// Static (leakage + uncore) power floor in watts.
    pub idle_w: f64,
    /// Core frequency (MHz) where memory bandwidth saturates (Figure 1h).
    pub bw_sat_mhz: f64,
    /// Normalized supply voltage at the *lowest supported* frequency
    /// (V at `max_core_mhz` is 1).
    pub volt_min: f64,
    /// Exponent of the voltage–frequency curve (1 = linear; >1 means most
    /// of the voltage rise happens at the top of the range).
    pub volt_exp: f64,
    /// Weight of FP activity in the dynamic-power utilization blend.
    pub pwr_w_fp: f64,
    /// Weight of DRAM activity in the dynamic-power utilization blend.
    pub pwr_w_dram: f64,
}

impl DeviceSpec {
    /// The NVIDIA A100 (GA100) profile used throughout the paper.
    pub fn ga100() -> Self {
        Self {
            arch: ArchKind::Ampere,
            min_core_mhz: 210.0,
            max_core_mhz: 1410.0,
            min_used_mhz: 510.0,
            step_mhz: 15.0,
            memory_mhz: 1597.0,
            memory_gb: 80.0,
            peak_bw_gbs: 2039.0,
            peak_fp64_gflops: 9_700.0,
            peak_fp32_gflops: 19_500.0,
            tdp_w: 500.0,
            idle_w: 130.0,
            bw_sat_mhz: 900.0,
            // Steep top-end V-f curve (the A100 runs ~0.75 V at mid clocks
            // and ~1.09 V at 1410 MHz): most of the voltage rise sits in
            // the top third of the range, which is what makes moderate
            // downclocks save 30%+ power.
            volt_min: 0.64,
            volt_exp: 2.5,
            // Solves u(DGEMM: fp .95 / dram .30) = 1.0 and
            // u(STREAM: fp .08 / dram .95) = 0.32 (so STREAM@fmax ~ TDP/2).
            pwr_w_fp: 0.97,
            pwr_w_dram: 0.26,
        }
    }

    /// The NVIDIA V100 (GV100) profile (the paper's portability target).
    pub fn gv100() -> Self {
        Self {
            arch: ArchKind::Volta,
            min_core_mhz: 135.0,
            max_core_mhz: 1380.0,
            min_used_mhz: 510.0,
            step_mhz: 7.5,
            memory_mhz: 877.0,
            memory_gb: 40.0,
            peak_bw_gbs: 900.0,
            peak_fp64_gflops: 7_800.0,
            peak_fp32_gflops: 15_700.0,
            tdp_w: 250.0,
            idle_w: 62.0,
            bw_sat_mhz: 820.0,
            // Deliberately slightly different electrical constants: this is
            // what creates the paper's small cross-architecture error.
            volt_min: 0.60,
            volt_exp: 2.2,
            pwr_w_fp: 0.94,
            pwr_w_dram: 0.30,
        }
    }

    /// Looks up the spec for an architecture.
    pub fn for_arch(arch: ArchKind) -> Self {
        match arch {
            ArchKind::Ampere => Self::ga100(),
            ArchKind::Volta => Self::gv100(),
        }
    }

    /// Peak FLOPs (GFLOP/s) for the given FP64 fraction of a workload's
    /// floating-point mix, at the maximum clock.
    pub fn peak_gflops_for_mix(&self, fp64_ratio: f64) -> f64 {
        let r = fp64_ratio.clamp(0.0, 1.0);
        // Harmonic blend: a mix of fp64/fp32 work is limited by each
        // pipe proportionally to its share.
        let inv = r / self.peak_fp64_gflops + (1.0 - r) / self.peak_fp32_gflops;
        1.0 / inv
    }

    /// Default (maximum) core frequency in MHz.
    pub fn default_core_mhz(&self) -> f64 {
        self.max_core_mhz
    }

    /// Renders the paper's Table 1 column for this device.
    pub fn table1_rows(&self) -> Vec<(String, String)> {
        vec![
            (
                "Core Frequency Range (MHz)".into(),
                format!("[{:.0}:{:.0}]", self.min_core_mhz, self.max_core_mhz),
            ),
            (
                "Default Core Frequency (MHz)".into(),
                format!("{:.0}", self.default_core_mhz()),
            ),
            (
                "Memory Frequency (MHz)".into(),
                format!("{:.0}", self.memory_mhz),
            ),
            (
                "GPU Memory (HBM2e) (GB)".into(),
                format!("{:.0}", self.memory_gb),
            ),
            (
                "Peak Memory Bandwidth (GB/s)".into(),
                format!("{:.0}", self.peak_bw_gbs),
            ),
            ("TDP (W)".into(), format!("{:.0}", self.tdp_w)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants_match_paper() {
        let a = DeviceSpec::ga100();
        assert_eq!(a.min_core_mhz, 210.0);
        assert_eq!(a.max_core_mhz, 1410.0);
        assert_eq!(a.memory_mhz, 1597.0);
        assert_eq!(a.memory_gb, 80.0);
        assert_eq!(a.peak_bw_gbs, 2039.0);
        assert_eq!(a.tdp_w, 500.0);

        let v = DeviceSpec::gv100();
        assert_eq!(v.min_core_mhz, 135.0);
        assert_eq!(v.max_core_mhz, 1380.0);
        assert_eq!(v.memory_mhz, 877.0);
        assert_eq!(v.memory_gb, 40.0);
        assert_eq!(v.peak_bw_gbs, 900.0);
        assert_eq!(v.tdp_w, 250.0);
    }

    #[test]
    fn default_frequency_is_max() {
        assert_eq!(DeviceSpec::ga100().default_core_mhz(), 1410.0);
        assert_eq!(DeviceSpec::gv100().default_core_mhz(), 1380.0);
    }

    #[test]
    fn for_arch_round_trips() {
        assert_eq!(
            DeviceSpec::for_arch(ArchKind::Ampere).arch,
            ArchKind::Ampere
        );
        assert_eq!(DeviceSpec::for_arch(ArchKind::Volta).arch, ArchKind::Volta);
    }

    #[test]
    fn peak_gflops_mix_interpolates() {
        let a = DeviceSpec::ga100();
        assert!((a.peak_gflops_for_mix(1.0) - a.peak_fp64_gflops).abs() < 1e-9);
        assert!((a.peak_gflops_for_mix(0.0) - a.peak_fp32_gflops).abs() < 1e-9);
        let mid = a.peak_gflops_for_mix(0.5);
        assert!(mid > a.peak_fp64_gflops && mid < a.peak_fp32_gflops);
    }

    #[test]
    fn peak_gflops_mix_clamps_out_of_range() {
        let a = DeviceSpec::ga100();
        assert_eq!(a.peak_gflops_for_mix(2.0), a.peak_gflops_for_mix(1.0));
        assert_eq!(a.peak_gflops_for_mix(-1.0), a.peak_gflops_for_mix(0.0));
    }

    #[test]
    fn chip_names() {
        assert_eq!(ArchKind::Ampere.chip_name(), "GA100");
        assert_eq!(ArchKind::Volta.chip_name(), "GV100");
    }

    #[test]
    fn table1_rows_render() {
        let rows = DeviceSpec::ga100().table1_rows();
        assert_eq!(rows.len(), 6);
        assert!(rows[0].1.contains("210") && rows[0].1.contains("1410"));
    }
}
