//! Synthesis of the paper's twelve DCGM utilization metrics.

use crate::arch::DeviceSpec;
use crate::model;
use crate::noise::{measurement_rng, NoiseModel};
use crate::signature::WorkloadSignature;
use serde::{Deserialize, Serialize};

/// DCGM sampling interval used by the paper (20 ms).
pub const SAMPLING_INTERVAL_S: f64 = 0.020;

/// One measurement of a workload at one DVFS state: the paper's twelve
/// metrics (Section 4.1) plus identifying metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Workload name.
    pub workload: String,
    /// Run index (the paper executes each workload three times).
    pub run: u32,
    /// (1) FP64 pipe activity, [0, 1].
    pub fp64_active: f64,
    /// (2) FP32 pipe activity, [0, 1].
    pub fp32_active: f64,
    /// (3) SM application clock in MHz.
    pub sm_app_clock: f64,
    /// (4) DRAM activity (achieved / peak bandwidth), [0, 1].
    pub dram_active: f64,
    /// (5) Graphics-engine activity, [0, 1].
    pub gr_engine_active: f64,
    /// (6) Coarse GPU utilization, [0, 1].
    pub gpu_utilization: f64,
    /// (7) Board power draw in watts.
    pub power_usage: f64,
    /// (8) SM busy fraction, [0, 1].
    pub sm_active: f64,
    /// (9) SM occupancy, [0, 1].
    pub sm_occupancy: f64,
    /// (10) PCIe transmitted bytes over one sampling interval.
    pub pcie_tx_bytes: f64,
    /// (11) PCIe received bytes over one sampling interval.
    pub pcie_rx_bytes: f64,
    /// (12) Execution time of the run in seconds.
    pub exec_time: f64,
}

impl MetricSample {
    /// The paper's combined FP activity feature (`fp_active`).
    pub fn fp_active(&self) -> f64 {
        (self.fp64_active + self.fp32_active).clamp(0.0, 1.0)
    }

    /// Measured energy of the run in joules.
    pub fn energy(&self) -> f64 {
        self.power_usage * self.exec_time
    }

    /// CSV header matching [`MetricSample::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "workload,run,fp64_active,fp32_active,sm_app_clock,dram_active,gr_engine_active,\
         gpu_utilization,power_usage,sm_active,sm_occupancy,pcie_tx_bytes,pcie_rx_bytes,exec_time"
    }

    /// Renders the sample as one CSV row.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{:.6},{:.6},{:.1},{:.6},{:.6},{:.6},{:.3},{:.6},{:.6},{:.0},{:.0},{:.6}",
            self.workload,
            self.run,
            self.fp64_active,
            self.fp32_active,
            self.sm_app_clock,
            self.dram_active,
            self.gr_engine_active,
            self.gpu_utilization,
            self.power_usage,
            self.sm_active,
            self.sm_occupancy,
            self.pcie_tx_bytes,
            self.pcie_rx_bytes,
            self.exec_time
        )
    }

    /// The ten candidate *features* in the fixed order used by the
    /// feature-characterization experiment (everything except the two
    /// predictands `power_usage` and `exec_time`).
    pub fn feature_vector(&self) -> [f64; 10] {
        [
            self.fp64_active,
            self.fp32_active,
            self.sm_app_clock,
            self.dram_active,
            self.gr_engine_active,
            self.gpu_utilization,
            self.sm_active,
            self.sm_occupancy,
            self.pcie_tx_bytes,
            self.pcie_rx_bytes,
        ]
    }

    /// Names aligned with [`MetricSample::feature_vector`].
    pub fn feature_names() -> [&'static str; 10] {
        [
            "fp64_active",
            "fp32_active",
            "sm_app_clock",
            "dram_active",
            "gr_engine_active",
            "gpu_utilization",
            "sm_active",
            "sm_occupancy",
            "pcie_tx_bytes",
            "pcie_rx_bytes",
        ]
    }
}

/// Workload-level constants needed to synthesize a full metric sample from
/// aggregate clean readings. For single-phase workloads these come straight
/// from the [`WorkloadSignature`]; for phase mixtures they are time-weighted
/// averages.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleMeta {
    /// Workload name (noise-seeding key and report label).
    pub name: String,
    /// Effective compute-roofline efficiency (for the SM-busy estimate).
    pub kappa_compute: f64,
    /// Effective memory-roofline efficiency.
    pub kappa_memory: f64,
    /// FP64 fraction of FP work.
    pub fp64_ratio: f64,
    /// SM occupancy.
    pub sm_occupancy: f64,
    /// PCIe transmit rate MB/s.
    pub pcie_tx_mbs: f64,
    /// PCIe receive rate MB/s.
    pub pcie_rx_mbs: f64,
}

impl From<&WorkloadSignature> for SampleMeta {
    fn from(sig: &WorkloadSignature) -> Self {
        Self {
            name: sig.name.clone(),
            kappa_compute: sig.kappa_compute,
            kappa_memory: sig.kappa_memory,
            fp64_ratio: sig.fp64_ratio,
            sm_occupancy: sig.sm_occupancy,
            pcie_tx_mbs: sig.pcie_tx_mbs,
            pcie_rx_mbs: sig.pcie_rx_mbs,
        }
    }
}

/// Simulates one measured run of `sig` on `spec` at clock `mhz`.
///
/// Noise is deterministic in `(workload, mhz, run, arch)`. Activity noise
/// feeds the power computation, so power and activity errors correlate as
/// they do on real hardware.
pub fn measure(
    spec: &DeviceSpec,
    sig: &WorkloadSignature,
    mhz: f64,
    run: u32,
    noise: &NoiseModel,
) -> MetricSample {
    let (fp_clean, dram_clean) = model::activities(spec, sig, mhz);
    let t_clean = model::exec_time(spec, sig, mhz);
    measure_aggregate(
        spec,
        &SampleMeta::from(sig),
        fp_clean,
        dram_clean,
        t_clean,
        mhz,
        run,
        noise,
    )
}

/// Synthesizes a noisy [`MetricSample`] from clean aggregate readings.
///
/// This is the shared measurement path for both single-phase workloads
/// ([`measure`]) and phase mixtures (`mixture::PhasedWorkload::measure`).
#[allow(clippy::too_many_arguments)]
pub fn measure_aggregate(
    spec: &DeviceSpec,
    meta: &SampleMeta,
    fp_clean: f64,
    dram_clean: f64,
    t_clean: f64,
    mhz: f64,
    run: u32,
    noise: &NoiseModel,
) -> MetricSample {
    let salt = match spec.arch {
        crate::arch::ArchKind::Ampere => 0xA100,
        crate::arch::ArchKind::Volta => 0x100,
    };
    let mut rng = measurement_rng(&meta.name, mhz, run, salt);

    let fp = (fp_clean * NoiseModel::factor(noise.activity_sigma, &mut rng)).clamp(0.0, 1.0);
    let dram = (dram_clean * NoiseModel::factor(noise.activity_sigma, &mut rng)).clamp(0.0, 1.0);

    let power = model::power_from_activities(spec, fp, dram, mhz)
        * NoiseModel::factor(noise.power_sigma, &mut rng);
    let exec = t_clean * NoiseModel::factor(noise.time_sigma, &mut rng);

    // Secondary metrics: plausible DCGM readings that carry little or no
    // information beyond the primary three (they are what Figure 3 ranks
    // *below* fp_active / sm_app_clock / dram_active). sm_active counts a
    // cycle as active when any warp is resident — memory stalls included —
    // so it sits high for every saturated kernel regardless of clock.
    let sm_active = ((0.86 + 0.10 * meta.sm_occupancy)
        * NoiseModel::factor(noise.activity_sigma, &mut rng))
    .clamp(0.0, 1.0);
    let gr_engine_active =
        (0.99 * sm_active * NoiseModel::factor(noise.activity_sigma, &mut rng)).clamp(0.0, 1.0);
    let gpu_utilization =
        ((0.90 + 0.10 * sm_active) * NoiseModel::factor(0.01, &mut rng)).clamp(0.0, 1.0);
    let sm_occupancy =
        (meta.sm_occupancy * NoiseModel::factor(noise.activity_sigma, &mut rng)).clamp(0.0, 1.0);
    let pcie_tx = meta.pcie_tx_mbs
        * 1e6
        * SAMPLING_INTERVAL_S
        * NoiseModel::factor(noise.pcie_sigma, &mut rng).max(0.0);
    let pcie_rx = meta.pcie_rx_mbs
        * 1e6
        * SAMPLING_INTERVAL_S
        * NoiseModel::factor(noise.pcie_sigma, &mut rng).max(0.0);

    MetricSample {
        workload: meta.name.clone(),
        run,
        fp64_active: fp * meta.fp64_ratio,
        fp32_active: fp * (1.0 - meta.fp64_ratio),
        sm_app_clock: mhz,
        dram_active: dram,
        gr_engine_active,
        gpu_utilization,
        power_usage: power,
        sm_active,
        sm_occupancy,
        pcie_tx_bytes: pcie_tx,
        pcie_rx_bytes: pcie_rx,
        exec_time: exec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::SignatureBuilder;

    fn sig() -> WorkloadSignature {
        SignatureBuilder::new("dgemm")
            .flops(4.0e12)
            .bytes(6.0e10)
            .kappa_compute(0.95)
            .kappa_memory(0.60)
            .sm_occupancy(0.45)
            .build()
    }

    #[test]
    fn measurement_is_deterministic() {
        let spec = DeviceSpec::ga100();
        let nm = NoiseModel::default_bench();
        let a = measure(&spec, &sig(), 1005.0, 0, &nm);
        let b = measure(&spec, &sig(), 1005.0, 0, &nm);
        assert_eq!(a, b);
    }

    #[test]
    fn runs_differ() {
        let spec = DeviceSpec::ga100();
        let nm = NoiseModel::default_bench();
        let a = measure(&spec, &sig(), 1005.0, 0, &nm);
        let b = measure(&spec, &sig(), 1005.0, 1, &nm);
        assert_ne!(a.power_usage, b.power_usage);
        assert_ne!(a.exec_time, b.exec_time);
    }

    #[test]
    fn archs_get_different_noise() {
        let nm = NoiseModel::default_bench();
        let a = measure(&DeviceSpec::ga100(), &sig(), 1005.0, 0, &nm);
        let v = measure(&DeviceSpec::gv100(), &sig(), 1005.0, 0, &nm);
        assert_ne!(a.power_usage, v.power_usage);
    }

    #[test]
    fn noiseless_sample_matches_model() {
        let spec = DeviceSpec::ga100();
        let s = sig();
        let m = measure(&spec, &s, 1200.0, 0, &NoiseModel::none());
        assert!((m.power_usage - model::power(&spec, &s, 1200.0)).abs() < 1e-9);
        assert!((m.exec_time - model::exec_time(&spec, &s, 1200.0)).abs() < 1e-12);
        let (fp, dram) = model::activities(&spec, &s, 1200.0);
        assert!((m.fp_active() - fp).abs() < 1e-12);
        assert!((m.dram_active - dram).abs() < 1e-12);
    }

    #[test]
    fn fp64_fp32_split_respects_ratio() {
        let spec = DeviceSpec::ga100();
        let mut s = sig();
        s.fp64_ratio = 0.25;
        let m = measure(&spec, &s, 1410.0, 0, &NoiseModel::none());
        assert!((m.fp64_active / (m.fp64_active + m.fp32_active) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn all_fractions_in_unit_interval() {
        let spec = DeviceSpec::ga100();
        let nm = NoiseModel::default_bench();
        for run in 0..3 {
            for &f in &[510.0, 900.0, 1410.0] {
                let m = measure(&spec, &sig(), f, run, &nm);
                for v in [
                    m.fp64_active,
                    m.fp32_active,
                    m.dram_active,
                    m.gr_engine_active,
                    m.gpu_utilization,
                    m.sm_active,
                    m.sm_occupancy,
                ] {
                    assert!((0.0..=1.0).contains(&v), "metric {v} out of range");
                }
                assert!(m.power_usage > 0.0 && m.exec_time > 0.0);
                assert!(m.pcie_tx_bytes >= 0.0 && m.pcie_rx_bytes >= 0.0);
            }
        }
    }

    #[test]
    fn csv_row_has_header_arity() {
        let spec = DeviceSpec::ga100();
        let m = measure(&spec, &sig(), 1410.0, 0, &NoiseModel::default_bench());
        let header_cols = MetricSample::csv_header().split(',').count();
        let row_cols = m.to_csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
    }

    #[test]
    fn feature_vector_matches_names() {
        assert_eq!(MetricSample::feature_names().len(), 10);
        let spec = DeviceSpec::ga100();
        let m = measure(&spec, &sig(), 1410.0, 0, &NoiseModel::none());
        let fv = m.feature_vector();
        assert_eq!(fv[2], 1410.0); // sm_app_clock position
        assert_eq!(fv[3], m.dram_active);
    }

    #[test]
    fn energy_is_power_times_time() {
        let spec = DeviceSpec::ga100();
        let m = measure(&spec, &sig(), 1100.0, 0, &NoiseModel::default_bench());
        assert!((m.energy() - m.power_usage * m.exec_time).abs() < 1e-9);
    }
}
