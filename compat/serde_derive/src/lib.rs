//! Derive macros for the in-tree `serde` stand-in.
//!
//! Implemented with hand-rolled `proc_macro::TokenStream` parsing (the
//! build environment has no `syn`/`quote`), covering the shapes this
//! workspace derives on:
//!
//! * structs with named fields (with optional `#[serde(skip)]` fields,
//!   which are omitted on serialize and default-initialized on
//!   deserialize);
//! * enums with unit variants (serialized as the variant-name string)
//!   and struct variants (serialized externally tagged:
//!   `{"Variant": {...}}`) — the same JSON layout upstream serde uses.
//!
//! Tuple structs, tuple variants, and generic types are intentionally
//! unsupported and produce a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_serialize(name, fields),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (doc comments, other derives' leftovers) and
    // visibility until the `struct` / `enum` keyword.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub` (possibly `pub(crate)` — the paren group is a
                // separate token and is skipped on the next iteration).
            }
            Some(_) => {}
            None => panic!("serde derive: no struct or enum found"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected a type name, got {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde derive: generic type {name} is unsupported")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde derive: unit/tuple struct {name} is unsupported")
            }
            Some(_) => {}
            None => panic!("serde derive: {name} has no braced body"),
        }
    };
    if kind == "struct" {
        Item::Struct {
            name,
            fields: parse_fields(body),
        }
    } else {
        Item::Enum {
            name,
            variants: parse_variants(body),
        }
    }
}

/// Skips one run of `#[...]` attributes, returning whether any of them
/// was `#[serde(skip)]`.
fn skip_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        if let Some(TokenTree::Group(g)) = tokens.next() {
            skip |= attr_is_serde_skip(g.stream());
        }
    }
    skip
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let mut toks = stream.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = skip_attrs(&mut tokens);
        // Visibility: `pub` plus an optional restriction group.
        if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            tokens.next();
            if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                tokens.next();
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected a field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field {name}, got {other:?}"),
        }
        // Consume the type: everything until a comma at angle-bracket
        // depth zero. Groups are atomic tokens, so commas inside
        // parens/brackets never surface here.
        let mut angle_depth = 0i32;
        for t in tokens.by_ref() {
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected a variant name, got {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                tokens.next();
                Some(parse_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde derive: tuple variant {name} is unsupported")
            }
            _ => None,
        };
        // Consume up to and including the trailing comma.
        for t in tokens.by_ref() {
            if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ------------------------------------------------------------- generation

fn object_literal(entries: &[(String, String)]) -> String {
    let mut s = String::from("::serde::value::Value::Object(::std::vec![");
    for (key, value_expr) in entries {
        s.push_str(&format!(
            "(::std::string::String::from(\"{key}\"), {value_expr}),"
        ));
    }
    s.push_str("])");
    s
}

fn gen_struct_serialize(name: &str, fields: &[Field]) -> String {
    let entries: Vec<(String, String)> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            (
                f.name.clone(),
                format!("::serde::Serialize::to_value(&self.{})", f.name),
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n\
         {}\n\
         }}\n\
         }}",
        object_literal(&entries)
    )
}

fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!("{}: ::std::default::Default::default(),", f.name));
        } else {
            inits.push_str(&format!(
                "{0}: ::serde::__private::field(__v, \"{name}\", \"{0}\")?,",
                f.name
            ));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::value::Value) \
         -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
         ::std::result::Result::Ok({name} {{ {inits} }})\n\
         }}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        match &v.fields {
            None => {
                arms.push_str(&format!(
                    "{name}::{0} => ::serde::value::Value::Str(\
                     ::std::string::String::from(\"{0}\")),\n",
                    v.name
                ));
            }
            Some(fields) => {
                let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let inner: Vec<(String, String)> = fields
                    .iter()
                    .filter(|f| !f.skip)
                    .map(|f| {
                        (
                            f.name.clone(),
                            format!("::serde::Serialize::to_value({})", f.name),
                        )
                    })
                    .collect();
                let payload = object_literal(&inner);
                let entry = vec![(v.name.clone(), payload)];
                arms.push_str(&format!(
                    "{name}::{} {{ {} }} => {},\n",
                    v.name,
                    bindings.join(", "),
                    object_literal(&entry)
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n\
         match self {{\n{arms}\n}}\n\
         }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit: Vec<&Variant> = variants.iter().filter(|v| v.fields.is_none()).collect();
    let tagged: Vec<&Variant> = variants.iter().filter(|v| v.fields.is_some()).collect();

    // Unit variants arrive as plain strings.
    let mut string_block = String::new();
    if !unit.is_empty() {
        let mut arms = String::new();
        for v in &unit {
            arms.push_str(&format!(
                "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                v.name
            ));
        }
        string_block = format!(
            "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
             return match __s {{\n{arms}\
             __other => ::std::result::Result::Err(::serde::de::Error::custom(\
             ::std::format!(\"unknown {name} variant {{__other}}\"))),\n\
             }};\n}}\n"
        );
    }

    // Struct variants arrive externally tagged.
    let tagged_block = if tagged.is_empty() {
        format!(
            "::std::result::Result::Err(::serde::de::Error::custom(\
             \"expected a {name} variant name\"))"
        )
    } else {
        let mut arms = String::new();
        for v in &tagged {
            let mut inits = String::new();
            for f in v.fields.as_ref().expect("tagged variant has fields") {
                if f.skip {
                    inits.push_str(&format!("{}: ::std::default::Default::default(),", f.name));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::__private::field(__payload, \"{name}::{1}\", \"{0}\")?,",
                        f.name, v.name
                    ));
                }
            }
            arms.push_str(&format!(
                "\"{0}\" => ::std::result::Result::Ok({name}::{0} {{ {inits} }}),\n",
                v.name
            ));
        }
        format!(
            "let (__tag, __payload) = ::serde::__private::variant(__v, \"{name}\")?;\n\
             match __tag {{\n{arms}\
             __other => ::std::result::Result::Err(::serde::de::Error::custom(\
             ::std::format!(\"unknown {name} variant {{__other}}\"))),\n\
             }}"
        )
    };

    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::value::Value) \
         -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
         {string_block}\
         {tagged_block}\n\
         }}\n\
         }}"
    )
}
