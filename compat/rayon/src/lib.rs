//! Hermetic stand-in for the `rayon` crate.
//!
//! Provides the parallel-iterator API subset this workspace uses, backed
//! by `std::thread::scope` instead of a work-stealing pool. The model is
//! eager: each *transforming* adaptor (`map`, `flat_map_iter`,
//! `for_each`) materializes its input, splits it into contiguous
//! per-thread chunks, and runs the closure on scoped worker threads,
//! preserving input order. Cheap pairing adaptors (`enumerate`, `zip`)
//! and terminal folds (`sum`, `collect`) run sequentially — by the time
//! they execute, the expensive closure work has already happened in
//! parallel upstream.
//!
//! Inputs shorter than two elements, or machines reporting one CPU, run
//! inline with no thread overhead.

use std::ops::{Range, RangeInclusive};

/// Number of worker threads parallel operations fan out across.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `oper_a` and `oper_b`, potentially in parallel, and returns both
/// results. `oper_a` always runs on the calling thread (so thread-local
/// state — e.g. tracing-span stacks — observed by `oper_a` matches a
/// sequential call); `oper_b` runs on a scoped worker thread unless the
/// machine reports a single CPU, in which case both run inline.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(oper_b);
        let ra = oper_a();
        (ra, hb.join().expect("rayon compat join worker panicked"))
    })
}

/// Runs `f` over `items` on scoped threads, preserving order.
fn pmap<T: Send, U: Send, F>(items: Vec<T>, f: F) -> Vec<U>
where
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 || n < 2 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon compat worker panicked"))
            .collect()
    })
}

/// An eager parallel iterator over an owned buffer of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<U: Send, F>(self, f: F) -> ParIter<U>
    where
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: pmap(self.items, f),
        }
    }

    /// Applies `f` in parallel and flattens the per-item iterators in
    /// input order.
    pub fn flat_map_iter<U: Send, I, F>(self, f: F) -> ParIter<U>
    where
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        let nested = pmap(self.items, |item| f(item).into_iter().collect::<Vec<U>>());
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        pmap(self.items, f);
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Pairs items element-wise with another parallel iterator,
    /// truncating to the shorter side.
    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> ParIter<(T, Z::Item)> {
        ParIter {
            items: self
                .items
                .into_iter()
                .zip(other.into_par_iter().items)
                .collect(),
        }
    }

    /// Folds the items pairwise with `op`, starting from `identity()`.
    /// The expensive work happened in upstream adaptors; the fold itself
    /// is sequential, which keeps it deterministic (left-to-right).
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> T
    where
        Id: Fn() -> T + Sync,
        Op: Fn(T, T) -> T + Sync,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Sums the items. The expensive work happened in upstream adaptors;
    /// the fold itself is sequential.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Collects the items into any `FromIterator` container.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }
}

/// Conversion into a [`ParIter`].
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts `self` into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }

        impl IntoParallelIterator for RangeInclusive<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(usize, u64, u32, i64, i32);

/// Borrowing parallel iteration over slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over non-overlapping chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// Mutably-borrowing parallel iteration over slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    /// Parallel iterator over non-overlapping exclusive chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// The traits rayon callers conventionally glob-import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_sequential() {
        let total: u64 = (1..=100u64).into_par_iter().map(|x| x * x).sum();
        assert_eq!(total, (1..=100u64).map(|x| x * x).sum::<u64>());
    }

    #[test]
    fn par_iter_mut_updates_in_place() {
        let mut data = vec![1.0f64; 64];
        data.par_iter_mut().for_each(|x| *x += 1.0);
        assert!(data.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn par_chunks_mut_enumerate_zip() {
        let mut data = [0usize; 12];
        let tail = [100usize, 200, 300];
        data.par_chunks_mut(4)
            .zip(tail.par_iter())
            .enumerate()
            .for_each(|(i, (chunk, &t))| {
                for slot in chunk.iter_mut() {
                    *slot = i + t;
                }
            });
        assert_eq!(data[0], 100);
        assert_eq!(data[4], 201);
        assert_eq!(data[8], 302);
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let out: Vec<usize> = vec![1usize, 2, 3]
            .into_par_iter()
            .flat_map_iter(|x| (0..x).map(move |y| x * 10 + y))
            .collect();
        assert_eq!(out, vec![10, 20, 21, 30, 31, 32]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = crate::join(|| 6 * 7, || "done".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "done");
    }

    #[test]
    fn join_runs_oper_a_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let (a_thread, _) = crate::join(|| std::thread::current().id(), || ());
        assert_eq!(a_thread, caller);
    }

    #[test]
    fn empty_and_single_inputs() {
        let out: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<usize> = vec![7usize].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
