//! Hermetic stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the `proptest!` macro over
//! `#[test]` functions with `pat in strategy` arguments, range and tuple
//! strategies, `prop_map`, `collection::vec`, `Just`, the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros, and
//! `ProptestConfig::with_cases`.
//!
//! Simplifications relative to upstream: no shrinking — each case is an
//! independent deterministic sample (seeded from the test's module path
//! and case index), and assertion failures report the sampled values via
//! the normal panic message rather than a minimized counterexample.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod test_runner {
    /// Per-test configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the workspace suite fast
            // while still exercising the property broadly.
            Self { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::*;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from this strategy.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut StdRng) -> f64 {
            self.start + rng.random::<f64>() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut StdRng) -> f32 {
            self.start + rng.random::<f64>() as f32 * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.random::<u64>() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// A length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s of `element` samples with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                self.size.lo + (rng.random::<u64>() as usize) % (self.size.hi - self.size.lo)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-(test, case) RNG used by the `proptest!` expansion.
#[doc(hidden)]
pub fn __rng(test_path: &str, case: u32) -> StdRng {
    // FNV-1a over the fully-qualified test name, mixed with the case
    // index, so every property gets an independent reproducible stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Defines property tests. Each `#[test] fn name(pat in strategy, ...)`
/// item runs its body over `cases` deterministic random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::__rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// The common glob import used by property-test modules.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Range strategies stay in bounds and tuples compose.
        #[test]
        fn ranges_in_bounds(
            x in -2.5..7.5f64,
            n in 3usize..10,
            (a, b) in (0u64..100, 10i32..20),
        ) {
            prop_assert!((-2.5..7.5).contains(&x));
            prop_assert!((3..10).contains(&n));
            prop_assert!(a < 100);
            prop_assert!((10..20).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// `collection::vec` honors both fixed and ranged sizes, and
        /// `prop_map` transforms samples.
        #[test]
        fn vec_and_map(
            fixed in crate::collection::vec(0.0..1.0f64, 5),
            ranged in crate::collection::vec(0u64..10, 2..6),
            doubled in (1usize..50).prop_map(|v| v * 2),
        ) {
            prop_assert_eq!(fixed.len(), 5);
            prop_assert!((2..6).contains(&ranged.len()));
            prop_assert_eq!(doubled % 2, 0);
            prop_assume!(doubled > 2);
            prop_assert!(doubled >= 4);
        }
    }

    #[test]
    fn rng_is_deterministic_per_case() {
        use crate::strategy::Strategy;
        let a = (0.0..1.0f64).sample(&mut crate::__rng("t", 3));
        let b = (0.0..1.0f64).sample(&mut crate::__rng("t", 3));
        let c = (0.0..1.0f64).sample(&mut crate::__rng("t", 4));
        assert_eq!(a.to_bits(), b.to_bits());
        assert_ne!(a.to_bits(), c.to_bits());
    }
}
