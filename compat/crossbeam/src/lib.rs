//! Hermetic stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, implemented over
//! `std::sync::mpsc`. That covers this workspace's usage: an unbounded
//! producer/consumer channel between the telemetry collection loop and
//! its writer thread.

pub mod channel {
    use std::sync::mpsc::{Receiver as StdReceiver, Sender as StdSender};
    pub use std::sync::mpsc::{RecvError, SendError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(StdSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; errors if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(StdReceiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Drains whatever is currently available without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.try_iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = std::sync::mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn values_cross_threads_in_order() {
            let (tx, rx) = unbounded::<usize>();
            let producer = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).expect("receiver alive");
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            producer.join().expect("producer finished");
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
