//! Hermetic stand-in for the `parking_lot` crate.
//!
//! Provides [`Mutex`] and [`RwLock`] with parking_lot's signatures —
//! `lock()`/`read()`/`write()` return the guard directly with no
//! poisoning `Result` — implemented over their `std::sync` counterparts.
//! A panic while a guard is held does not poison the lock for later
//! users, matching parking_lot semantics.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Exclusive-access guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking while a writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive access, blocking until all guards are released.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips_values() {
        let m = Mutex::new(5u64);
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(1u64));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(3u64);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!((*r1, *r2), (3, 3));
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
        assert_eq!(l.into_inner(), 9);
    }

    #[test]
    fn rwlock_get_mut_bypasses_locking() {
        let mut l = RwLock::new(vec![1, 2]);
        l.get_mut().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn panicking_writer_does_not_poison_rwlock() {
        let l = std::sync::Arc::new(RwLock::new(1u64));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
