//! Hermetic stand-in for the `parking_lot` crate.
//!
//! Provides [`Mutex`] with parking_lot's signature — `lock()` returns
//! the guard directly with no poisoning `Result` — implemented over
//! `std::sync::Mutex`. A panic while a guard is held does not poison the
//! lock for later users, matching parking_lot semantics.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips_values() {
        let m = Mutex::new(5u64);
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(1u64));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
