//! The JSON-shaped value tree shared by `serde` and `serde_json`.

/// A dynamically-typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number. Integers are exact up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved (struct field order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key-value entries, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

impl crate::Serialize for Value {
    /// A value tree serializes as itself, so pre-built trees (e.g. the
    /// `obs` metrics exporter's) can pass through `serde_json` directly.
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    /// Deserializing into `Value` captures the raw tree — the JSON
    /// analogue of `serde_json::Value` round-tripping upstream.
    fn from_value(v: &Value) -> Result<Self, crate::de::Error> {
        Ok(v.clone())
    }
}
