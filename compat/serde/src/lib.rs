//! Hermetic stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the serialization surface the workspace uses: [`Serialize`] /
//! [`Deserialize`] traits built around a JSON-shaped [`value::Value`]
//! tree, with derive macros re-exported from the companion
//! `serde_derive` proc-macro crate. `serde_json` (also in `compat/`)
//! renders and parses the value tree as JSON text.
//!
//! Simplifications relative to upstream serde:
//!
//! * one self-describing data model (the value tree) instead of the
//!   generic `Serializer`/`Deserializer` driver traits;
//! * numbers are carried as `f64` — exact for every integer this
//!   workspace serializes (all well below 2^53);
//! * `Deserialize` has no lifetime parameter (no zero-copy borrowing).

pub mod de;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use value::Value;

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_bool()
            .ok_or_else(|| de::Error::custom("expected a boolean"))
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| de::Error::custom(concat!("expected a number for ", stringify!($t))))?;
                Ok(n as $t)
            }
        }
    )*};
}
impl_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| de::Error::custom("expected a string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_array()
            .ok_or_else(|| de::Error::custom("expected an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| de::Error::custom("expected a tuple array"))?;
                if items.len() != $len {
                    return Err(de::Error::custom("tuple arity mismatch"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

/// Helpers invoked by code the derive macros generate. Not a public API.
#[doc(hidden)]
pub mod __private {
    use super::{de, Deserialize, Value};

    /// Looks up field `name` in `v` (which must be an object) and
    /// deserializes it, with struct context in the error message.
    pub fn field<T: Deserialize>(v: &Value, ty: &str, name: &str) -> Result<T, de::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| de::Error::custom(format!("expected an object for {ty}")))?;
        let entry = obj
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, val)| val)
            .ok_or_else(|| de::Error::custom(format!("missing field {ty}.{name}")))?;
        T::from_value(entry).map_err(|e| de::Error::custom(format!("{ty}.{name}: {e}")))
    }

    /// Splits an externally-tagged enum value `{"Variant": {...}}` into
    /// its tag and payload.
    pub fn variant<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, &'v Value), de::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| de::Error::custom(format!("expected a variant object for {ty}")))?;
        match obj {
            [(tag, payload)] => Ok((tag.as_str(), payload)),
            _ => Err(de::Error::custom(format!(
                "expected a single-variant object for {ty}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::from_value(&3.25f64.to_value()).unwrap(), 3.25);
        assert_eq!(u64::from_value(&17u64.to_value()).unwrap(), 17);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f64, 2.5, -3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        let t = ("a".to_string(), 2.0f64);
        assert_eq!(<(String, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(f64::from_value(&Value::Str("x".into())).is_err());
        assert!(String::from_value(&Value::Num(1.0)).is_err());
        assert!(Vec::<f64>::from_value(&Value::Bool(true)).is_err());
    }
}
