//! Deserialization error type.

/// An error produced while rebuilding a type from a value tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
