//! Hermetic stand-in for the `serde_json` crate.
//!
//! Renders the in-tree `serde` [`Value`] tree as JSON text and parses
//! JSON text back into it. Floats are written with Rust's `{}` Display
//! formatting, which is shortest-roundtrip: `to_string` → `from_str`
//! reproduces every finite `f64` bit-for-bit (matching upstream
//! serde_json's `float_roundtrip` feature). Non-finite floats are
//! rendered as `null`, as upstream does.

use serde::{Deserialize, Serialize};

pub use serde::value::Value;

/// A JSON serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ----------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.len(), indent, depth, '[', ']', |out, i, d| {
                write_value(out, &items[i], indent, d);
            });
        }
        Value::Object(entries) => {
            write_seq(out, entries.len(), indent, depth, '{', '}', |out, i, d| {
                let (k, val) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, d);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    use std::fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else {
        // `{}` on f64 is shortest-roundtrip: parsing it back yields the
        // identical bit pattern.
        write!(out, "{n}").expect("write to String");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("number span is ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number {text:?} at offset {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Copy the longest run of plain bytes in one shot.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: only needed for exotic
                            // strings; handle the pair form too.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.parse_hex4()?;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            s.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let span = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(span).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected , or ] at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected , or }} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bitwise() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            std::f64::consts::PI,
            -2.5e-17,
            1.7976931348623157e308,
            5e-324,
            0.0,
            -0.0,
            42.0,
        ] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "via {text}");
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line1\nline2\t\"quoted\" \\ and unicode: é∆";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn nested_values_round_trip() {
        let v = vec![vec![1.5f64, 2.0], vec![], vec![-0.25]];
        let text = to_string(&v).unwrap();
        let back: Vec<Vec<f64>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = vec![1.0f64, 2.0];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("1.0extra").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
