//! Hermetic stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this crate
//! implements the (small) API subset the workspace uses: a seedable,
//! deterministic generator ([`rngs::StdRng`]), uniform sampling of
//! primitives and ranges via [`Rng`], and Fisher-Yates shuffling via
//! [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64, which has
//! excellent statistical quality for simulation workloads. It is **not**
//! the same stream as upstream `rand`'s ChaCha-based `StdRng`; everything
//! in this workspace only relies on determinism under a fixed seed, never
//! on a specific stream.

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic, seedable generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_raw(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng::from_u64_seed(state)
    }
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait SampleUniform: Sized {
    /// Draws one uniformly distributed value.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for u64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniform for u32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleUniform for usize {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleUniform for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = f64::sample_from(rng);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the simulation-sized spans
                // used here (all far below 2^32).
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32);

/// The generator interface: raw output plus uniform sampling helpers.
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws one uniformly distributed value of type `T`.
    fn random<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    /// Draws one value uniformly from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher-Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq::SliceRandom;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.random_range(-3.0..7.5f64);
            assert!((-3.0..7.5).contains(&x));
            let n = rng.random_range(5usize..9);
            assert!((5..9).contains(&n));
            let m = rng.random_range(2u64..=4);
            assert!((2..=4).contains(&m));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(11));
        b.shuffle(&mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "shuffle left the slice in order");
    }
}
