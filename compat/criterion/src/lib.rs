//! Hermetic stand-in for the `criterion` crate.
//!
//! Implements the benchmarking API surface this workspace uses —
//! `Criterion::bench_function`, benchmark groups with `sample_size` /
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple `std::time::Instant`
//! harness. Each benchmark warms up briefly, then takes `sample_size`
//! timed samples and prints min / median / max / mean nanoseconds per
//! iteration. No statistical outlier analysis, plots, or baselines.
//!
//! Two environment variables extend the harness for scripting:
//!
//! - `CRITERION_JSON=<path>` appends one JSON line per benchmark
//!   (`{"name":...,"mean_ns":...,"min_ns":...,"median_ns":...,"max_ns":...}`)
//!   so wrappers like `scripts/bench_baseline.sh` can collect numbers
//!   without scraping the human-readable output.
//! - `CRITERION_QUICK=1` shrinks warm-up and sample time and caps the
//!   sample count at 3 — a smoke mode that exercises every bench body
//!   end to end without producing publishable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` call sites work; identical to
/// `std::hint::black_box`.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
const WARMUP: Duration = Duration::from_millis(50);
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// True when `CRITERION_QUICK=1`: smoke mode for CI-style plumbing checks.
fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn warmup_time() -> Duration {
    if quick_mode() {
        Duration::from_millis(2)
    } else {
        WARMUP
    }
}

fn target_sample_time() -> Duration {
    if quick_mode() {
        Duration::from_millis(1)
    } else {
        TARGET_SAMPLE_TIME
    }
}

/// Times one benchmark routine.
pub struct Bencher {
    /// Per-sample mean nanoseconds per iteration.
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording wall-clock time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup_time() {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_sample =
            ((target_sample_time().as_secs_f64() / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters_per_sample as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        let min = self.samples_ns[0];
        let med = self.samples_ns[self.samples_ns.len() / 2];
        let max = self.samples_ns[self.samples_ns.len() - 1];
        println!(
            "{name:<40} time: [{} {} {}] mean: {}",
            format_ns(min),
            format_ns(med),
            format_ns(max),
            format_ns(mean)
        );
        append_json_record(name, mean, min, med, max);
    }
}

/// Appends a machine-readable record to `$CRITERION_JSON` if set.
fn append_json_record(name: &str, mean: f64, min: f64, med: f64, max: f64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "{}", json_record_line(name, mean, min, med, max));
    }
}

fn json_record_line(name: &str, mean: f64, min: f64, med: f64, max: f64) -> String {
    format!(
        "{{\"name\":\"{name}\",\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\
         \"median_ns\":{med:.1},\"max_ns\":{max:.1}}}"
    )
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// An identifier combining a function name and an input parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, matching upstream's rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name.to_string(), DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(format!("{}/{id}", self.name), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group. (All reporting already happened per-benchmark.)
    pub fn finish(self) {}
}

/// Substring filters from the command line (`cargo bench -- <filter>...`),
/// matching upstream criterion's behaviour of running only benchmarks
/// whose id contains a filter. Flags like `--bench` are ignored.
fn name_filters() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect()
}

fn run_one<F: FnMut(&mut Bencher)>(name: String, sample_size: usize, mut f: F) {
    let filters = name_filters();
    if !filters.is_empty() && !filters.iter().any(|f| name.contains(f.as_str())) {
        return;
    }
    let sample_size = if quick_mode() {
        sample_size.min(3)
    } else {
        sample_size
    };
    let mut bencher = Bencher {
        samples_ns: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    bencher.report(&name);
}

/// Collects benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_renders_like_upstream() {
        assert_eq!(BenchmarkId::new("naive", 128).to_string(), "naive/128");
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2.0e9).ends_with(" s"));
    }

    #[test]
    fn json_record_is_one_flat_object() {
        let line = json_record_line("group/bench", 1234.56, 1000.0, 1200.0, 1500.0);
        assert_eq!(
            line,
            "{\"name\":\"group/bench\",\"mean_ns\":1234.6,\"min_ns\":1000.0,\
             \"median_ns\":1200.0,\"max_ns\":1500.0}"
        );
    }
}
